//! Campaign manifest: schema, decoding and the spec fingerprint.
//!
//! A manifest declares an experiment campaign declaratively — the
//! workloads, the architecture axis (a Table-I grid and/or explicit
//! points), batch sizes, the per-cell fidelity policy and the
//! objectives to report — so that the sweeps behind the paper's
//! figures are reproducible artifacts instead of hand-written example
//! binaries. See docs/CAMPAIGNS.md for the full schema reference with
//! a worked example.
//!
//! Manifests are TOML (`.toml`, default) or JSON (`.json`), parsed by
//! the vendored-free readers in [`crate::campaign::toml`] /
//! [`crate::campaign::value`] into the same [`Value`] tree and decoded
//! here. Decoding *normalizes*: workload aliases are resolved through
//! [`gemini_model::zoo::by_name`], arch point-grids are expanded, and
//! the result serializes to a canonical JSON form whose FNV-1a hash is
//! the campaign [`CampaignSpec::fingerprint`] — the value the journal
//! header carries so `--resume` can refuse a journal written for a
//! different experiment.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use gemini_arch::{presets, ArchConfig, Topology};

use crate::dse::{DseSpec, Objective};
use crate::fidelity::FluidConfig;

use super::toml::parse_toml;
use super::value::{fnv1a64, parse_json, Value};

/// A manifest decoding failure.
#[derive(Debug, Clone)]
pub struct ManifestError(pub String);

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest error: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ManifestError> {
    Err(ManifestError(msg.into()))
}

/// How the workload list turns into evaluation sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadMode {
    /// One set containing every workload (the DSE's geometric-mean
    /// co-design view; the default).
    Joint,
    /// One set per workload (per-workload optima).
    Each,
    /// Every per-workload set plus the joint set (the
    /// `multi_dnn_codesign` comparison).
    Both,
}

impl WorkloadMode {
    fn as_str(&self) -> &'static str {
        match self {
            Self::Joint => "joint",
            Self::Each => "each",
            Self::Both => "both",
        }
    }
}

/// Per-cell network-fidelity policy.
///
/// Campaign cells are independent (that is what makes the journal
/// resumable), so the ladder applies per cell: `Fluid` re-scores every
/// cell's mapping with the max-min fluid NoC simulator and records the
/// congestion-corrected delay next to the analytic one — the same
/// correction the DSE re-rank stage applies to its top-K survivors
/// ([`crate::fidelity::FidelityPolicy::RerankTopK`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellFidelity {
    /// Analytic evaluator only (rung 0).
    Analytic,
    /// Fluid-referenced congestion correction per cell (rung 1).
    Fluid(FluidConfig),
}

/// An axis of the multi-objective Pareto archive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParetoAxis {
    /// End-to-end delay in seconds (the congestion-corrected delay when
    /// the cell ran the fluid rung).
    Latency,
    /// Total energy in joules.
    Energy,
    /// Energy-delay product.
    Edp,
    /// Monetary cost in dollars.
    Cost,
    /// Total silicon area in mm².
    Area,
    /// Served tail latency under load: the `percentile`-th latency of
    /// the canonical serving scenario at `rate_rps` (seconds).
    Tail {
        /// Offered load (requests per second).
        rate_rps: f64,
        /// Percentile in `(0, 100]`.
        percentile: f64,
    },
    /// SLA miss rate under load: `1 - goodput` within `budget_ms` at
    /// `rate_rps` (lower is better, like every axis).
    SlaMiss {
        /// Offered load (requests per second).
        rate_rps: f64,
        /// Served-latency budget (milliseconds).
        budget_ms: f64,
    },
}

impl ParetoAxis {
    /// Canonical lowercase name (CSV/JSON column).
    pub fn name(&self) -> String {
        match *self {
            Self::Latency => "latency".into(),
            Self::Energy => "energy".into(),
            Self::Edp => "edp".into(),
            Self::Cost => "mc".into(),
            Self::Area => "area".into(),
            Self::Tail {
                rate_rps,
                percentile,
            } => format!("p{percentile}@{rate_rps}"),
            Self::SlaMiss {
                rate_rps,
                budget_ms,
            } => {
                format!("slamiss@{rate_rps}:{budget_ms}ms")
            }
        }
    }

    fn parse(s: &str) -> Result<Self, ManifestError> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "latency" | "delay" | "d" => return Ok(Self::Latency),
            "energy" | "e" => return Ok(Self::Energy),
            "edp" => return Ok(Self::Edp),
            "mc" | "cost" => return Ok(Self::Cost),
            "area" => return Ok(Self::Area),
            _ => {}
        }
        // The traffic axes borrow the objective grammar: `p99@500`
        // maps to Tail, `goodput@500:25ms` (or its axis-native alias
        // `slamiss@...`) to SlaMiss.
        let spelling = lower.replacen("slamiss@", "goodput@", 1);
        match crate::objective::ObjectiveSpec::parse(&spelling) {
            Ok(crate::objective::ObjectiveSpec::TailLatency {
                rate_rps,
                percentile,
            }) => Ok(Self::Tail {
                rate_rps,
                percentile,
            }),
            Ok(crate::objective::ObjectiveSpec::SlaGoodput {
                rate_rps,
                budget_ms,
            }) => Ok(Self::SlaMiss {
                rate_rps,
                budget_ms,
            }),
            _ => err(format!(
                "unknown pareto axis '{s}' (use latency|energy|edp|mc|area, \
                 p<pct>@<rate>, or slamiss@<rate>:<budget>ms)"
            )),
        }
    }
}

/// An objective with a display label (named preset or explicit
/// exponents).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedObjective {
    /// Label used in artifacts (`mc-e-d`, `e-d`, … or `mc^a*e^b*d^c`).
    pub label: String,
    /// The exponents.
    pub objective: Objective,
}

/// The Table-I grid portion of the architecture axis.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// The parameter grid.
    pub spec: DseSpec,
    /// Keep every `stride`-th candidate (1 = full grid).
    pub stride: usize,
}

/// A fully-decoded, normalized campaign manifest.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name: directory under the output root, `[a-z0-9_-]`.
    pub name: String,
    /// SA seed shared by every cell.
    pub seed: u64,
    /// SA iteration budget per mapping run.
    pub sa_iters: u32,
    /// Batch-size axis.
    pub batches: Vec<u32>,
    /// Objectives reported in the artifacts (the Pareto archive itself
    /// is objective-free).
    pub objectives: Vec<NamedObjective>,
    /// Per-cell fidelity policy.
    pub fidelity: CellFidelity,
    /// Axes of the Pareto archive.
    pub pareto_axes: Vec<ParetoAxis>,
    /// Output root; artifacts land in `<out_dir>/<name>/`.
    pub out_dir: String,
    /// Normalized workload zoo names.
    pub workloads: Vec<String>,
    /// How workloads combine into evaluation sets.
    pub workload_mode: WorkloadMode,
    /// Optional Table-I grid.
    pub grid: Option<GridSpec>,
    /// Explicit architecture points (point-grids already expanded).
    pub explicit: Vec<ArchConfig>,
}

impl CampaignSpec {
    /// Reads and decodes a manifest file (`.json` parses as JSON,
    /// anything else as TOML).
    pub fn load(path: &Path) -> Result<Self, ManifestError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ManifestError(format!("cannot read {}: {e}", path.display())))?;
        let is_json = path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("json"));
        Self::from_str_format(&text, is_json)
    }

    /// Decodes manifest text (`json = true` for JSON, else TOML).
    pub fn from_str_format(text: &str, json: bool) -> Result<Self, ManifestError> {
        let value = if json {
            parse_json(text).map_err(|e| ManifestError(format!("JSON: {e}")))?
        } else {
            parse_toml(text).map_err(|e| ManifestError(format!("TOML: {e}")))?
        };
        Self::decode(&value)
    }

    /// Decodes a parsed manifest tree.
    pub fn decode(v: &Value) -> Result<Self, ManifestError> {
        let c = v
            .get("campaign")
            .ok_or_else(|| ManifestError("missing [campaign] table".into()))?;
        let name = req_str(c, "name")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || "-_".contains(ch))
        {
            return err(format!(
                "campaign.name '{name}' must be non-empty [a-z0-9_-]"
            ));
        }
        let seed = match opt_num(c, "seed")? {
            None => 0xC0FFEE,
            Some(n) => uint(n, "campaign.seed")?,
        };
        let sa_iters = match opt_num(c, "sa_iters")? {
            None => 300,
            Some(n) => uint32(n, "campaign.sa_iters")?,
        };
        let batches = match c.get("batches") {
            None => vec![64],
            Some(v) => num_list(v, "campaign.batches")?
                .into_iter()
                .map(|n| uint32(n, "campaign.batches"))
                .collect::<Result<Vec<_>, _>>()?,
        };
        if batches.is_empty() || batches.contains(&0) {
            return err("campaign.batches must be non-empty and positive");
        }
        let objectives = match c.get("objectives") {
            None => vec![parse_objective(&Value::from("mc-e-d"))?],
            Some(Value::List(l)) if !l.is_empty() => l
                .iter()
                .map(parse_objective)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return err("campaign.objectives must be a non-empty list"),
        };
        let fidelity = match c.get("fidelity") {
            None => CellFidelity::Analytic,
            Some(v) => {
                let s = v
                    .as_str()
                    .ok_or_else(|| ManifestError("campaign.fidelity must be a string".into()))?;
                match s {
                    "analytic" => CellFidelity::Analytic,
                    "fluid" => CellFidelity::Fluid(FluidConfig::default()),
                    other => {
                        return err(format!("unknown fidelity '{other}' (use analytic|fluid)"))
                    }
                }
            }
        };
        let pareto_axes = match c.get("pareto") {
            None => vec![
                ParetoAxis::Latency,
                ParetoAxis::Energy,
                ParetoAxis::Edp,
                ParetoAxis::Area,
            ],
            Some(Value::List(l)) if !l.is_empty() => {
                let axes = l
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .ok_or_else(|| ManifestError("pareto axes must be strings".into()))
                            .and_then(ParetoAxis::parse)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                for (i, a) in axes.iter().enumerate() {
                    if axes[..i].contains(a) {
                        return err(format!("duplicate pareto axis '{}'", a.name()));
                    }
                }
                axes
            }
            Some(_) => return err("campaign.pareto must be a non-empty list"),
        };
        let out_dir = opt_str(c, "out_dir")?.unwrap_or_else(|| "bench_results/campaigns".into());

        // Workloads.
        let w = v
            .get("workloads")
            .ok_or_else(|| ManifestError("missing [workloads] table".into()))?;
        let names = match w.get("names") {
            Some(Value::List(l)) if !l.is_empty() => l
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| ManifestError("workload names must be strings".into()))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return err("workloads.names must be a non-empty list of zoo names"),
        };
        let mut workloads = Vec::with_capacity(names.len());
        for n in &names {
            let Some(w) = gemini_model::zoo::by_name(n) else {
                return err(format!(
                    "unknown workload '{n}' (try `gemini models` for the zoo list)"
                ));
            };
            // Normalize to the zoo's own name so the fingerprint does
            // not depend on which alias the manifest used.
            workloads.push(w.graph.name().to_string());
        }
        for (i, n) in workloads.iter().enumerate() {
            if workloads[..i].contains(n) {
                return err(format!("duplicate workload '{n}'"));
            }
        }
        let workload_mode = match opt_str(w, "mode")?.as_deref() {
            None | Some("joint") => WorkloadMode::Joint,
            Some("each") => WorkloadMode::Each,
            Some("both") => WorkloadMode::Both,
            Some(other) => return err(format!("unknown workloads.mode '{other}'")),
        };

        // Architecture axis: a grid, explicit points, or both.
        let grid = match v.get("grid") {
            None => None,
            Some(g) => Some(decode_grid(g)?),
        };
        let explicit = match v.get("arch") {
            None => Vec::new(),
            Some(Value::List(l)) => {
                let mut out = Vec::new();
                for (i, entry) in l.iter().enumerate() {
                    decode_arch_entry(entry, i, &mut out)?;
                }
                out
            }
            Some(_) => return err("[[arch]] must be an array of tables"),
        };
        if grid.is_none() && explicit.is_empty() {
            return err("the manifest needs an architecture axis: a [grid] and/or [[arch]] points");
        }

        let spec = Self {
            name,
            seed,
            sa_iters,
            batches,
            objectives,
            fidelity,
            pareto_axes,
            out_dir,
            workloads,
            workload_mode,
            grid,
            explicit,
        };
        if spec.arch_candidates().is_empty() {
            return err("the architecture axis produced no valid candidates");
        }
        Ok(spec)
    }

    /// Every architecture candidate of the campaign, in deterministic
    /// order: grid candidates (strided) first, explicit points after.
    pub fn arch_candidates(&self) -> Vec<ArchConfig> {
        let mut out = Vec::new();
        if let Some(g) = &self.grid {
            out.extend(
                g.spec
                    .candidates()
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| i % g.stride.max(1) == 0)
                    .map(|(_, a)| a),
            );
        }
        out.extend(self.explicit.iter().cloned());
        out
    }

    /// The workload evaluation sets as `(label, member indices)` in
    /// deterministic order (per-workload sets first, then `joint`).
    pub fn workload_sets(&self) -> Vec<(String, Vec<usize>)> {
        let each = || {
            self.workloads
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), vec![i]))
                .collect::<Vec<_>>()
        };
        let joint = || {
            (
                "joint".to_string(),
                (0..self.workloads.len()).collect::<Vec<_>>(),
            )
        };
        match self.workload_mode {
            WorkloadMode::Joint => vec![joint()],
            WorkloadMode::Each => each(),
            WorkloadMode::Both => {
                let mut sets = each();
                // A single workload's joint set duplicates its solo set.
                if self.workloads.len() > 1 {
                    sets.push(joint());
                }
                sets
            }
        }
    }

    /// The campaign's axis lengths `(workload sets, batches, archs)` —
    /// the single definition the driver, the journal loaders and the
    /// shard merge validate cell indices against.
    pub fn dims(&self) -> (usize, usize, usize) {
        (
            self.workload_sets().len(),
            self.batches.len(),
            self.arch_candidates().len(),
        )
    }

    /// Total cell count: the product of [`CampaignSpec::dims`].
    pub fn n_cells(&self) -> usize {
        let (w, b, a) = self.dims();
        w * b * a
    }

    /// Canonical JSON form of the normalized spec (key-ordered,
    /// shortest-round-trip floats) — the fingerprint preimage.
    pub fn canonical_json(&self) -> String {
        let mut t = BTreeMap::new();
        t.insert("name".into(), Value::from(self.name.as_str()));
        t.insert("seed".into(), Value::Num(self.seed as f64));
        t.insert("sa_iters".into(), Value::from(self.sa_iters));
        t.insert(
            "batches".into(),
            Value::List(self.batches.iter().map(|&b| Value::from(b)).collect()),
        );
        t.insert(
            "objectives".into(),
            Value::List(
                self.objectives
                    .iter()
                    .map(|o| {
                        // The Edp shape predates the traffic
                        // objectives; it must stay `[label, a, b, g]`
                        // so pre-existing campaign fingerprints hold.
                        Value::List(match o.objective {
                            Objective::Edp { alpha, beta, gamma } => vec![
                                Value::from(o.label.as_str()),
                                Value::Num(alpha),
                                Value::Num(beta),
                                Value::Num(gamma),
                            ],
                            Objective::TailLatency {
                                rate_rps,
                                percentile,
                            } => vec![
                                Value::from(o.label.as_str()),
                                Value::from("tail"),
                                Value::Num(rate_rps),
                                Value::Num(percentile),
                            ],
                            Objective::SlaGoodput {
                                rate_rps,
                                budget_ms,
                            } => vec![
                                Value::from(o.label.as_str()),
                                Value::from("goodput"),
                                Value::Num(rate_rps),
                                Value::Num(budget_ms),
                            ],
                        })
                    })
                    .collect(),
            ),
        );
        t.insert(
            "fidelity".into(),
            match self.fidelity {
                CellFidelity::Analytic => Value::from("analytic"),
                CellFidelity::Fluid(f) => {
                    Value::List(vec![Value::from("fluid"), Value::Num(f.cap_bytes)])
                }
            },
        );
        t.insert(
            "pareto".into(),
            Value::List(
                self.pareto_axes
                    .iter()
                    .map(|a| Value::from(a.name()))
                    .collect(),
            ),
        );
        t.insert(
            "workloads".into(),
            Value::List(
                self.workloads
                    .iter()
                    .map(|n| Value::from(n.as_str()))
                    .collect(),
            ),
        );
        t.insert(
            "workload_mode".into(),
            Value::from(self.workload_mode.as_str()),
        );
        if let Some(g) = &self.grid {
            let mut gt = BTreeMap::new();
            gt.insert("tops".into(), Value::Num(g.spec.tops));
            gt.insert("stride".into(), Value::from(g.stride));
            gt.insert(
                "cuts".into(),
                Value::List(g.spec.cuts.iter().map(|&c| Value::from(c)).collect()),
            );
            gt.insert(
                "dram_bw_per_tops".into(),
                Value::List(
                    g.spec
                        .dram_bw_per_tops
                        .iter()
                        .map(|&x| Value::Num(x))
                        .collect(),
                ),
            );
            gt.insert(
                "noc_bw".into(),
                Value::List(g.spec.noc_bw.iter().map(|&x| Value::Num(x)).collect()),
            );
            gt.insert(
                "d2d_ratio".into(),
                Value::List(g.spec.d2d_ratio.iter().map(|&x| Value::Num(x)).collect()),
            );
            gt.insert(
                "glb_kb".into(),
                Value::List(
                    g.spec
                        .glb_kb
                        .iter()
                        .map(|&x| Value::Num(x as f64))
                        .collect(),
                ),
            );
            gt.insert(
                "macs".into(),
                Value::List(g.spec.macs.iter().map(|&x| Value::from(x)).collect()),
            );
            gt.insert("freq_ghz".into(), Value::Num(g.spec.freq_ghz));
            t.insert("grid".into(), Value::Table(gt));
        }
        t.insert(
            "explicit".into(),
            Value::List(self.explicit.iter().map(arch_to_value).collect()),
        );
        Value::Table(t).to_json()
    }

    /// Stable fingerprint of the normalized spec, as 16 hex digits.
    /// Journals record it; `--resume` refuses a journal whose
    /// fingerprint does not match the manifest being run.
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical_json().as_bytes()))
    }
}

/// Canonical value form of one architecture (every parameter that
/// affects evaluation, not just the paper tuple).
fn arch_to_value(a: &ArchConfig) -> Value {
    let mut t = BTreeMap::new();
    t.insert("x".into(), Value::from(a.x_cores()));
    t.insert("y".into(), Value::from(a.y_cores()));
    t.insert("xcut".into(), Value::from(a.xcut()));
    t.insert("ycut".into(), Value::from(a.ycut()));
    t.insert("noc_bw".into(), Value::Num(a.noc_bw()));
    t.insert("d2d_bw".into(), Value::Num(a.d2d_bw()));
    t.insert("dram_bw".into(), Value::Num(a.dram_bw()));
    t.insert("dram_count".into(), Value::from(a.dram_count()));
    t.insert("glb_kb".into(), Value::Num((a.glb_bytes() / 1024) as f64));
    t.insert("macs".into(), Value::from(a.macs_per_core()));
    t.insert("freq_ghz".into(), Value::Num(a.freq_ghz()));
    t.insert("topology".into(), Value::from(topology_name(a.topology())));
    Value::Table(t)
}

/// Canonical name of a topology — shared by the fingerprint
/// serialization above and the CSV artifact writers, which must agree.
pub(crate) fn topology_name(t: Topology) -> &'static str {
    match t {
        Topology::Mesh => "mesh",
        Topology::FoldedTorus => "folded-torus",
    }
}

fn decode_grid(g: &Value) -> Result<GridSpec, ManifestError> {
    let tops = req_num(g, "tops")?;
    if tops.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return err("grid.tops must be positive");
    }
    let stride = match opt_num(g, "stride")? {
        None => 1,
        Some(n) => (uint(n, "grid.stride")? as usize).max(1),
    };
    let mut spec = DseSpec::table1(tops);
    if let Some(v) = g.get("cuts") {
        spec.cuts = num_list(v, "grid.cuts")?
            .into_iter()
            .map(|n| uint32(n, "grid.cuts"))
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(v) = g.get("dram_bw_per_tops") {
        spec.dram_bw_per_tops = num_list(v, "grid.dram_bw_per_tops")?;
    }
    if let Some(v) = g.get("noc_bw") {
        spec.noc_bw = num_list(v, "grid.noc_bw")?;
    }
    if let Some(v) = g.get("d2d_ratio") {
        spec.d2d_ratio = num_list(v, "grid.d2d_ratio")?;
    }
    if let Some(v) = g.get("glb_kb") {
        spec.glb_kb = uint_list(v, "grid.glb_kb")?;
    }
    if let Some(v) = g.get("macs") {
        spec.macs = num_list(v, "grid.macs")?
            .into_iter()
            .map(|n| uint32(n, "grid.macs"))
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(n) = opt_num(g, "freq_ghz")? {
        spec.freq_ghz = n;
    }
    Ok(GridSpec { spec, stride })
}

/// Decodes one `[[arch]]` entry — a named preset or a point-grid whose
/// list-valued fields expand as nested loops in documented order
/// (macs, glb_kb, noc_bw, d2d, dram_bw) — appending every expanded
/// [`ArchConfig`] to `out`.
fn decode_arch_entry(
    entry: &Value,
    index: usize,
    out: &mut Vec<ArchConfig>,
) -> Result<(), ManifestError> {
    let at = |msg: &str| format!("[[arch]] entry {index}: {msg}");
    if entry.as_table().is_none() {
        return err(at("must be a table"));
    }
    if let Some(p) = entry.get("preset") {
        let name = p
            .as_str()
            .ok_or_else(|| ManifestError(at("preset must be a string")))?;
        let arch = match name {
            "s-arch" | "simba" => presets::simba_s_arch(),
            "g-arch" => presets::g_arch_72(),
            "t-arch" => presets::t_arch(),
            "g-arch-torus" => presets::g_arch_vs_tarch(),
            other => return err(at(&format!("unknown preset '{other}'"))),
        };
        out.push(arch);
        return Ok(());
    }
    let cores = pair(entry, "cores").map_err(|e| ManifestError(at(&e.0)))?;
    let cuts = match entry.get("cuts") {
        None => (1, 1),
        Some(_) => pair(entry, "cuts").map_err(|e| ManifestError(at(&e.0)))?,
    };
    let scalar_or_list = |key: &str, default: f64| -> Result<Vec<f64>, ManifestError> {
        match entry.get(key) {
            None => Ok(vec![default]),
            Some(Value::Num(n)) => Ok(vec![*n]),
            Some(v) => num_list(v, key).map_err(|e| ManifestError(at(&e.0))),
        }
    };
    let check_ints = |vals: &[f64], key: &str| -> Result<(), ManifestError> {
        for &v in vals {
            uint(v, key).map_err(|e| ManifestError(at(&e.0)))?;
        }
        Ok(())
    };
    let macs = scalar_or_list("macs", 1024.0)?;
    for &v in &macs {
        // Narrowed to u32 by the builder below; saturating there would
        // quietly run a wrong architecture.
        uint32(v, "macs").map_err(|e| ManifestError(at(&e.0)))?;
    }
    let glb_kb = scalar_or_list("glb_kb", 1024.0)?;
    check_ints(&glb_kb, "glb_kb")?;
    let noc_bw = scalar_or_list("noc_bw", 32.0)?;
    let dram_bw = scalar_or_list("dram_bw", 144.0)?;
    // D2D: absolute bandwidths or ratios of the NoC bandwidth, not both.
    let (d2d_abs, d2d_ratio) = match (entry.get("d2d_bw"), entry.get("d2d_ratio")) {
        (Some(_), Some(_)) => return err(at("give d2d_bw or d2d_ratio, not both")),
        (Some(_), None) => (Some(scalar_or_list("d2d_bw", 0.0)?), None),
        (None, Some(_)) => (None, Some(scalar_or_list("d2d_ratio", 0.5)?)),
        (None, None) => (None, Some(vec![0.5])),
    };
    let freq_ghz = opt_num(entry, "freq_ghz")?.unwrap_or(1.0);
    let dram_count = match opt_num(entry, "dram_count")? {
        None => None,
        Some(n) => Some(uint32(n, "dram_count").map_err(|e| ManifestError(at(&e.0)))?),
    };
    let topology = match opt_str(entry, "topology")?.as_deref() {
        None | Some("mesh") => Topology::Mesh,
        Some("folded-torus") | Some("torus") => Topology::FoldedTorus,
        Some(other) => return err(at(&format!("unknown topology '{other}'"))),
    };

    let d2ds: Vec<(bool, f64)> = match (&d2d_abs, &d2d_ratio) {
        (Some(abs), _) => abs.iter().map(|&x| (true, x)).collect(),
        (_, Some(rat)) => rat.iter().map(|&x| (false, x)).collect(),
        _ => unreachable!("one of the two is Some"),
    };
    for &m in &macs {
        for &glb in &glb_kb {
            for &noc in &noc_bw {
                for &(abs, dv) in &d2ds {
                    for &dram in &dram_bw {
                        let mut b = ArchConfig::builder()
                            .cores(cores.0, cores.1)
                            .cuts(cuts.0, cuts.1)
                            .noc_bw(noc)
                            .d2d_bw(if abs { dv } else { noc * dv })
                            .dram_bw(dram)
                            .glb_kb(glb as u64)
                            .macs_per_core(m as u32)
                            .freq_ghz(freq_ghz)
                            .topology(topology);
                        if let Some(n) = dram_count {
                            b = b.dram_count(n);
                        }
                        let arch = b.build().map_err(|e| {
                            ManifestError(at(&format!("invalid architecture: {e:?}")))
                        })?;
                        out.push(arch);
                    }
                }
            }
        }
    }
    Ok(())
}

fn parse_objective(v: &Value) -> Result<NamedObjective, ManifestError> {
    match v {
        Value::Str(s) => {
            // One canonical spelling grammar for the whole repo; the
            // label keeps the manifest's own spelling so fingerprints
            // do not depend on alias choice being normalized.
            let objective = Objective::parse(s).map_err(|e| ManifestError(e.0))?;
            Ok(NamedObjective {
                label: s.clone(),
                objective,
            })
        }
        // Deprecated alias of the Edp variant: a bare exponent triple.
        Value::List(l) if l.len() == 3 => {
            let mut x = [0.0; 3];
            for (i, item) in l.iter().enumerate() {
                x[i] = item
                    .as_num()
                    .ok_or_else(|| ManifestError("objective exponents must be numbers".into()))?;
            }
            Ok(NamedObjective {
                label: format!("mc^{}*e^{}*d^{}", x[0], x[1], x[2]),
                objective: Objective::Edp {
                    alpha: x[0],
                    beta: x[1],
                    gamma: x[2],
                },
            })
        }
        _ => err(format!(
            "objectives entries must be names ({}) or deprecated [alpha, beta, gamma] triples",
            crate::objective::VALID_FORMS
        )),
    }
}

fn req_str(t: &Value, key: &str) -> Result<String, ManifestError> {
    opt_str(t, key)?.ok_or_else(|| ManifestError(format!("missing required key '{key}'")))
}

fn opt_str(t: &Value, key: &str) -> Result<Option<String>, ManifestError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| ManifestError(format!("'{key}' must be a string"))),
    }
}

fn req_num(t: &Value, key: &str) -> Result<f64, ManifestError> {
    opt_num(t, key)?.ok_or_else(|| ManifestError(format!("missing required key '{key}'")))
}

fn opt_num(t: &Value, key: &str) -> Result<Option<f64>, ManifestError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_num()
            .map(Some)
            .ok_or_else(|| ManifestError(format!("'{key}' must be a number"))),
    }
}

/// Validates an integer-valued field: no fractional part, no sign, and
/// within `f64`'s exact-integer range. Bare `as` casts would silently
/// truncate `2.7` to 2 and saturate `-5` to 0 — a quietly wrong
/// campaign instead of an error.
fn uint(n: f64, what: &str) -> Result<u64, ManifestError> {
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if n.fract() != 0.0 || !(0.0..=MAX_EXACT).contains(&n) {
        return err(format!("'{what}' must be a non-negative integer, got {n}"));
    }
    Ok(n as u64)
}

/// [`uint`] narrowed to `u32` (iteration counts, batch sizes, core
/// grid dimensions).
fn uint32(n: f64, what: &str) -> Result<u32, ManifestError> {
    u32::try_from(uint(n, what)?)
        .map_err(|_| ManifestError(format!("'{what}' exceeds the u32 range, got {n}")))
}

/// A list of integer-valued numbers ([`uint`] applied element-wise).
fn uint_list(v: &Value, what: &str) -> Result<Vec<u64>, ManifestError> {
    num_list(v, what)?
        .into_iter()
        .map(|n| uint(n, what))
        .collect()
}

fn num_list(v: &Value, what: &str) -> Result<Vec<f64>, ManifestError> {
    let l = v
        .as_list()
        .ok_or_else(|| ManifestError(format!("'{what}' must be a list of numbers")))?;
    if l.is_empty() {
        return err(format!("'{what}' must be non-empty"));
    }
    l.iter()
        .map(|item| {
            item.as_num()
                .ok_or_else(|| ManifestError(format!("'{what}' must contain only numbers")))
        })
        .collect()
}

fn pair(t: &Value, key: &str) -> Result<(u32, u32), ManifestError> {
    let l = num_list(
        t.get(key)
            .ok_or_else(|| ManifestError(format!("missing required key '{key}'")))?,
        key,
    )?;
    if l.len() != 2 {
        return err(format!("'{key}' must be a [x, y] pair"));
    }
    Ok((uint32(l[0], key)?, uint32(l[1], key)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
[campaign]
name = "tiny"
seed = 2
sa_iters = 40
batches = [2]
objectives = ["mc-e-d", "e-d", [0.0, 1.0, 2.0]]
fidelity = "fluid"

[workloads]
names = ["two-conv", "tiny-resnet"]
mode = "each"

[[arch]]
preset = "s-arch"

[[arch]]
cores = [6, 6]
cuts = [2, 1]
noc_bw = 32.0
d2d_bw = 16.0
dram_bw = 144.0
glb_kb = 2048
macs = 1024
"#;

    #[test]
    fn decodes_the_tiny_manifest() {
        let s = CampaignSpec::from_str_format(TINY, false).unwrap();
        assert_eq!(s.name, "tiny");
        assert_eq!(s.seed, 2);
        assert_eq!(s.sa_iters, 40);
        assert_eq!(s.batches, vec![2]);
        assert_eq!(s.objectives.len(), 3);
        assert_eq!(s.objectives[2].label, "mc^0*e^1*d^2");
        let Objective::Edp { alpha, beta, gamma } = s.objectives[2].objective else {
            panic!("a bare triple parses to the Edp variant");
        };
        assert_eq!((alpha, beta, gamma), (0.0, 1.0, 2.0));
        assert!(matches!(s.fidelity, CellFidelity::Fluid(_)));
        assert_eq!(s.workloads, vec!["two-conv", "tiny-resnet"]);
        assert_eq!(s.workload_mode, WorkloadMode::Each);
        let archs = s.arch_candidates();
        assert_eq!(archs.len(), 2);
        // The second explicit point is exactly G-Arch.
        assert_eq!(archs[1], presets::g_arch_72());
        assert_eq!(s.workload_sets().len(), 2);
    }

    #[test]
    fn grid_manifest_expands_table1() {
        let doc = r#"
[campaign]
name = "grid"

[workloads]
names = ["tf"]

[grid]
tops = 72.0
stride = 100
"#;
        let s = CampaignSpec::from_str_format(doc, false).unwrap();
        let full = DseSpec::table1(72.0).candidates().len();
        let got = s.arch_candidates().len();
        assert_eq!(got, full.div_ceil(100));
        // Defaults.
        assert_eq!(s.batches, vec![64]);
        assert_eq!(s.workload_sets(), vec![("joint".to_string(), vec![0])]);
        assert_eq!(s.pareto_axes.len(), 4);
    }

    #[test]
    fn point_grid_expansion_order_is_documented_order() {
        let doc = r#"
[campaign]
name = "points"

[workloads]
names = ["two-conv"]

[[arch]]
cores = [6, 6]
cuts = [2, 1]
glb_kb = [256, 1024]
noc_bw = [8.0, 32.0]
d2d_ratio = 0.5
"#;
        let s = CampaignSpec::from_str_format(doc, false).unwrap();
        let a = s.arch_candidates();
        assert_eq!(a.len(), 4);
        // glb outer, noc inner.
        assert_eq!(a[0].glb_bytes(), 256 * 1024);
        assert_eq!(a[0].noc_bw(), 8.0);
        assert_eq!(a[1].glb_bytes(), 256 * 1024);
        assert_eq!(a[1].noc_bw(), 32.0);
        assert_eq!(a[2].glb_bytes(), 1024 * 1024);
        // d2d_ratio applies per expanded NoC bandwidth.
        assert_eq!(a[1].d2d_bw(), 16.0);
    }

    #[test]
    fn json_manifest_parses_too() {
        let doc = r#"{
  "campaign": {"name": "j", "batches": [4]},
  "workloads": {"names": ["TWO_CONV"]},
  "arch": [{"preset": "g-arch"}]
}"#;
        let s = CampaignSpec::from_str_format(doc, true).unwrap();
        assert_eq!(s.name, "j");
        // Aliases normalize to the zoo's own name.
        assert_eq!(s.workloads, vec!["two-conv"]);
    }

    #[test]
    fn fingerprint_is_alias_invariant_and_spec_sensitive() {
        let a = CampaignSpec::from_str_format(TINY, false).unwrap();
        let b =
            CampaignSpec::from_str_format(&TINY.replace("two-conv", "TWO_CONV"), false).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c =
            CampaignSpec::from_str_format(&TINY.replace("seed = 2", "seed = 3"), false).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint().len(), 16);
    }

    #[test]
    fn rejects_fractional_and_negative_integer_fields() {
        // Bare `as` casts would turn these into a quietly wrong
        // campaign (sa_iters = -5 -> 0 iterations); they must error.
        for (from, to) in [
            ("sa_iters = 40", "sa_iters = -5"),
            ("sa_iters = 40", "sa_iters = 0.5"),
            ("seed = 2", "seed = -1"),
            ("batches = [2]", "batches = [2.7]"),
            ("glb_kb = 2048", "glb_kb = 2048.5"),
            ("macs = 1024", "macs = -1024"),
            ("macs = 1024", "macs = 9999999999"), // would saturate u32
            ("cores = [6, 6]", "cores = [6.5, 6]"),
        ] {
            let doc = TINY.replace(from, to);
            assert_ne!(doc, TINY, "replacement '{from}' not found");
            let res = CampaignSpec::from_str_format(&doc, false);
            assert!(res.is_err(), "'{to}' was accepted");
        }
        // Grid fields too.
        let grid_doc = r#"
[campaign]
name = "g"
[workloads]
names = ["tf"]
[grid]
tops = 72.0
stride = 2.5
"#;
        assert!(CampaignSpec::from_str_format(grid_doc, false).is_err());
    }

    #[test]
    fn rejects_bad_manifests() {
        let no_arch = "[campaign]\nname = \"x\"\n[workloads]\nnames = [\"tf\"]";
        assert!(CampaignSpec::from_str_format(no_arch, false).is_err());
        let bad_name = TINY.replace("\"tiny\"", "\"Tiny Campaign\"");
        assert!(CampaignSpec::from_str_format(&bad_name, false).is_err());
        let bad_wl = TINY.replace("two-conv", "alexnet");
        assert!(CampaignSpec::from_str_format(&bad_wl, false).is_err());
        let both_d2d = TINY.replace("d2d_bw = 16.0", "d2d_bw = 16.0\nd2d_ratio = 0.5");
        assert!(CampaignSpec::from_str_format(&both_d2d, false).is_err());
        let dup = TINY.replace(
            "names = [\"two-conv\", \"tiny-resnet\"]",
            "names = [\"two-conv\", \"TWO-CONV\"]",
        );
        assert!(CampaignSpec::from_str_format(&dup, false).is_err());
    }
}
