//! The objective API: what a DSE candidate, a campaign cell or a
//! service request is scored by.
//!
//! The paper's objective is the scalarization `MC^alpha * E^beta *
//! D^gamma` over monetary cost, energy and delay of one isolated
//! inference. Serving deployments care about a different quantity —
//! the *tail* of the latency distribution a request stream actually
//! observes, which queueing and batching can push far above the mapped
//! step latency. [`ObjectiveSpec`] unifies both: the exponent family
//! ([`ObjectiveSpec::Edp`]) and two traffic-derived objectives that
//! replay the canonical serving scenario ([`crate::traffic::serve_at`])
//! against the candidate's delay.
//!
//! Every consumer — the homogeneous and heterogeneous DSE, the fidelity
//! ladder, campaign manifests, the service protocol and the CLI —
//! parses and prints objectives through this one type, so a spelling
//! like `p99@500` means the same thing everywhere. The scoring
//! interface is unchanged from the old exponent struct
//! (`score(mc, e, d) -> f64`, lower is better), which keeps journals
//! and artifacts byte-identical for exponent objectives.

use serde::{Deserialize, Serialize};

use crate::traffic;

/// The valid objective spellings, quoted by every parse error.
pub const VALID_FORMS: &str = "mc-e-d | e-d | edp | d | delay | latency | e | energy | \
     p<pct>@<rate> (e.g. p99@500) | goodput@<rate>:<budget>ms (e.g. goodput@500:25ms)";

/// A scoring objective: lower scores are better under every variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ObjectiveSpec {
    /// The paper's exponent family `MC^alpha * E^beta * D^gamma`.
    Edp {
        /// Monetary-cost exponent.
        alpha: f64,
        /// Energy exponent.
        beta: f64,
        /// Delay exponent.
        gamma: f64,
    },
    /// Tail latency under load: the `percentile`-th served latency
    /// (seconds) of the canonical scenario at `rate_rps` Poisson
    /// arrivals, with the candidate's delay as the per-step latency.
    TailLatency {
        /// Offered load (requests per second).
        rate_rps: f64,
        /// Percentile in `(0, 100]` (99.0 for p99).
        percentile: f64,
    },
    /// SLA miss rate under load: the fraction of requests of the
    /// canonical scenario at `rate_rps` served *slower* than
    /// `budget_ms` (`1 - goodput`, so lower is better).
    SlaGoodput {
        /// Offered load (requests per second).
        rate_rps: f64,
        /// Served-latency budget (milliseconds).
        budget_ms: f64,
    },
}

impl ObjectiveSpec {
    /// The paper's default DSE objective `MC * E * D`.
    pub fn mc_e_d() -> Self {
        Self::Edp {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
        }
    }

    /// Energy-delay product (mapping-level objective).
    pub fn e_d() -> Self {
        Self::Edp {
            alpha: 0.0,
            beta: 1.0,
            gamma: 1.0,
        }
    }

    /// Delay only.
    pub fn d_only() -> Self {
        Self::Edp {
            alpha: 0.0,
            beta: 0.0,
            gamma: 1.0,
        }
    }

    /// Energy only.
    pub fn e_only() -> Self {
        Self::Edp {
            alpha: 0.0,
            beta: 1.0,
            gamma: 0.0,
        }
    }

    /// The p99-under-load objective at `rate_rps`.
    pub fn p99_at(rate_rps: f64) -> Self {
        Self::TailLatency {
            rate_rps,
            percentile: 99.0,
        }
    }

    /// Scores a candidate; lower is better under every variant.
    ///
    /// Exponent objectives are closed-form in `(mc, e, d)`. The traffic
    /// objectives replay the canonical serving scenario
    /// ([`crate::traffic::serve_at`]) with `d` as the per-step latency;
    /// `mc` and `e` do not enter, so their scores compare architectures
    /// purely by served tail behavior.
    pub fn score(&self, mc: f64, e: f64, d: f64) -> f64 {
        match *self {
            Self::Edp { alpha, beta, gamma } => mc.powf(alpha) * e.powf(beta) * d.powf(gamma),
            // Analytic *lower bounds* can legitimately be scored here
            // (rung-0 pruning); clamp so a zero-delay bound replays as
            // an arbitrarily fast server instead of panicking.
            Self::TailLatency {
                rate_rps,
                percentile,
            } => traffic::serve_at(rate_rps, d.max(1e-30)).quantile(percentile),
            Self::SlaGoodput {
                rate_rps,
                budget_ms,
            } => 1.0 - traffic::serve_at(rate_rps, d.max(1e-30)).goodput(budget_ms / 1e3),
        }
    }

    /// Whether the score is monotone non-decreasing in each of
    /// `(mc, e, d)` — the property that lets the rung-0 pre-filter
    /// prune on lower bounds. Exponent objectives are monotone iff all
    /// exponents are non-negative. The traffic objectives ignore `mc`
    /// and `e` and are pointwise monotone in `d`: the FCFS replay never
    /// completes any request *earlier* when every batch takes longer,
    /// so quantiles rise and goodput falls.
    pub fn monotone(&self) -> bool {
        match *self {
            Self::Edp { alpha, beta, gamma } => alpha >= 0.0 && beta >= 0.0 && gamma >= 0.0,
            Self::TailLatency { .. } | Self::SlaGoodput { .. } => true,
        }
    }

    /// Parses a canonical spelling (see [`VALID_FORMS`]). Unknown names
    /// and malformed parameters both produce errors that enumerate the
    /// valid spellings.
    pub fn parse(s: &str) -> Result<Self, ObjectiveParseError> {
        let s = s.trim();
        match s {
            "mc-e-d" => return Ok(Self::mc_e_d()),
            "e-d" | "edp" => return Ok(Self::e_d()),
            "d" | "delay" | "latency" => return Ok(Self::d_only()),
            "e" | "energy" => return Ok(Self::e_only()),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix('p') {
            if let Some((pct, rate)) = rest.split_once('@') {
                // Only commit to the tail-latency form when the head
                // parses as a percentile — `pnas@8` stays "unknown".
                if let Ok(percentile) = pct.parse::<f64>() {
                    let rate_rps = parse_rate(s, rate)?;
                    if !(percentile > 0.0 && percentile <= 100.0) {
                        return Err(malformed(
                            s,
                            format!("percentile must be in (0, 100], got {percentile}"),
                        ));
                    }
                    return Ok(Self::TailLatency {
                        rate_rps,
                        percentile,
                    });
                }
            }
        }
        if let Some(rest) = s.strip_prefix("goodput@") {
            let Some((rate, budget)) = rest.split_once(':') else {
                return Err(malformed(s, "expected goodput@<rate>:<budget>ms".into()));
            };
            let rate_rps = parse_rate(s, rate)?;
            let Some(ms) = budget.strip_suffix("ms") else {
                return Err(malformed(s, "budget must end in 'ms'".into()));
            };
            let budget_ms = ms.parse::<f64>().ok().filter(|b| *b > 0.0 && b.is_finite());
            let Some(budget_ms) = budget_ms else {
                return Err(malformed(
                    s,
                    format!("budget must be a positive number of ms, got '{ms}'"),
                ));
            };
            return Ok(Self::SlaGoodput {
                rate_rps,
                budget_ms,
            });
        }
        Err(ObjectiveParseError(format!(
            "unknown objective '{s}' (use {VALID_FORMS}, or [alpha, beta, gamma])"
        )))
    }

    /// The canonical spelling: [`ObjectiveSpec::parse`] of the result
    /// round-trips, and named [`ObjectiveSpec::Edp`] presets print as
    /// their names (other exponent combinations as `mc^a*e^b*d^c`, the
    /// campaign-artifact label form).
    pub fn canonical(&self) -> String {
        match *self {
            Self::Edp { alpha, beta, gamma } => match (alpha, beta, gamma) {
                (1.0, 1.0, 1.0) => "mc-e-d".into(),
                (0.0, 1.0, 1.0) => "e-d".into(),
                (0.0, 0.0, 1.0) => "d".into(),
                (0.0, 1.0, 0.0) => "e".into(),
                _ => format!("mc^{alpha}*e^{beta}*d^{gamma}"),
            },
            Self::TailLatency {
                rate_rps,
                percentile,
            } => format!("p{percentile}@{rate_rps}"),
            Self::SlaGoodput {
                rate_rps,
                budget_ms,
            } => {
                format!("goodput@{rate_rps}:{budget_ms}ms")
            }
        }
    }
}

fn parse_rate(spelling: &str, rate: &str) -> Result<f64, ObjectiveParseError> {
    rate.parse::<f64>()
        .ok()
        .filter(|r| *r > 0.0 && r.is_finite())
        .ok_or_else(|| {
            malformed(
                spelling,
                format!("rate must be a positive number of requests/s, got '{rate}'"),
            )
        })
}

fn malformed(spelling: &str, why: String) -> ObjectiveParseError {
    ObjectiveParseError(format!(
        "malformed objective '{spelling}': {why} (use {VALID_FORMS}, or [alpha, beta, gamma])"
    ))
}

/// An objective spelling that did not parse; the message always
/// enumerates [`VALID_FORMS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectiveParseError(pub String);

impl std::fmt::Display for ObjectiveParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ObjectiveParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_scores_match_the_old_struct_exactly() {
        // The Edp variant must reproduce the retired exponent struct
        // bit for bit — journals and fingerprints depend on it.
        assert_eq!(ObjectiveSpec::mc_e_d().score(2.0, 3.0, 4.0), 24.0);
        assert_eq!(ObjectiveSpec::e_d().score(2.0, 3.0, 4.0), 12.0);
        assert_eq!(ObjectiveSpec::d_only().score(2.0, 3.0, 4.0), 4.0);
        assert_eq!(ObjectiveSpec::e_only().score(2.0, 3.0, 4.0), 3.0);
        let odd = ObjectiveSpec::Edp {
            alpha: 0.5,
            beta: 2.0,
            gamma: 1.5,
        };
        let expect = 2.0f64.powf(0.5) * 3.0f64.powf(2.0) * 4.0f64.powf(1.5);
        assert_eq!(odd.score(2.0, 3.0, 4.0).to_bits(), expect.to_bits());
    }

    #[test]
    fn parse_round_trips_canonical_spellings() {
        for s in [
            "mc-e-d",
            "e-d",
            "d",
            "e",
            "p99@500",
            "p50@120.5",
            "goodput@500:25ms",
        ] {
            let o = ObjectiveSpec::parse(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(o.canonical(), s, "canonical form is stable");
            assert_eq!(ObjectiveSpec::parse(&o.canonical()), Ok(o));
        }
        assert_eq!(
            ObjectiveSpec::parse("edp"),
            Ok(ObjectiveSpec::e_d()),
            "aliases parse to the same spec"
        );
        assert_eq!(ObjectiveSpec::parse("latency"), Ok(ObjectiveSpec::d_only()));
        assert_eq!(
            ObjectiveSpec::parse("p99@500"),
            Ok(ObjectiveSpec::p99_at(500.0))
        );
    }

    #[test]
    fn parse_errors_enumerate_valid_spellings() {
        for bad in [
            "warp-speed",
            "p99@",
            "p99@-3",
            "p0@500",
            "p101@500",
            "goodput@500",
            "goodput@500:25",
            "goodput@0:25ms",
            "goodput@500:0ms",
        ] {
            let e = ObjectiveSpec::parse(bad).expect_err(bad);
            assert!(e.0.contains("p<pct>@<rate>"), "{bad}: {e}");
            assert!(e.0.contains("goodput@<rate>:<budget>ms"), "{bad}: {e}");
            assert!(e.0.contains("mc-e-d"), "{bad}: {e}");
        }
        // A zoo name with an @ is still "unknown", not "malformed".
        assert!(ObjectiveSpec::parse("pnas@8")
            .expect_err("not an objective")
            .0
            .starts_with("unknown objective"));
    }

    #[test]
    fn traffic_objectives_are_monotone_in_delay() {
        let p99 = ObjectiveSpec::p99_at(400.0);
        let good = ObjectiveSpec::SlaGoodput {
            rate_rps: 400.0,
            budget_ms: 20.0,
        };
        assert!(p99.monotone() && good.monotone());
        let mut last_p99 = 0.0;
        let mut last_miss = -1.0;
        for d in [1e-5, 1e-4, 1e-3, 1e-2] {
            let s = p99.score(1.0, 1.0, d);
            let m = good.score(1.0, 1.0, d);
            assert!(s >= last_p99, "p99 must rise with step latency");
            assert!(m >= last_miss, "miss rate must rise with step latency");
            assert!((0.0..=1.0).contains(&m));
            last_p99 = s;
            last_miss = m;
        }
        // The negative-exponent guard is unchanged.
        let inv = ObjectiveSpec::Edp {
            alpha: -1.0,
            beta: 1.0,
            gamma: 1.0,
        };
        assert!(!inv.monotone());
    }

    #[test]
    fn traffic_scores_ignore_cost_and_energy() {
        let o = ObjectiveSpec::p99_at(300.0);
        let a = o.score(1.0, 1.0, 2e-4);
        let b = o.score(7.0, 0.1, 2e-4);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
