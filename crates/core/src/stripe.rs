//! The heuristic stripe-based spatial mapping.
//!
//! This is the "widely adopted heuristic stripe-based strategy" the paper
//! cites from Tangram/ScaleDeep/Atomic-dataflow: each layer receives a
//! number of cores proportional to its FLOPs and is assigned a
//! *consecutive, rectangle-like* run of cores in snake order over the
//! grid, with its feature map striped along H (then W/K/B). All explicit
//! data flows are interleaved across DRAM controllers.
//!
//! It serves two roles (Sec. V-B1): the T-Map baseline, and the initial
//! state of Gemini's simulated annealing.

use gemini_arch::{ArchConfig, CoreId};
use gemini_model::Dnn;

use crate::encoding::{flow_needs, CoreGroup, FlowOfData, GroupSpec, Lms, Ms, Part};
use crate::factor::{largest_factorable, stripe_part_capacity};

/// Snake-order enumeration of all cores: row-major with alternating row
/// direction, so consecutive indices are always grid neighbours.
pub fn snake_order(arch: &ArchConfig) -> Vec<CoreId> {
    let mut out = Vec::with_capacity(arch.n_cores() as usize);
    for y in 0..arch.y_cores() {
        if y % 2 == 0 {
            for x in 0..arch.x_cores() {
                out.push(arch.core_at(x, y));
            }
        } else {
            for x in (0..arch.x_cores()).rev() {
                out.push(arch.core_at(x, y));
            }
        }
    }
    out
}

/// Allocates cores to members proportionally to their MAC counts
/// (largest-remainder rounding, minimum one core each).
///
/// # Panics
///
/// Panics if the group has more members than the accelerator has cores —
/// the graph partitioner guarantees this cannot happen.
pub fn proportional_allocation(dnn: &Dnn, spec: &GroupSpec, n_cores: u32) -> Vec<u32> {
    let n = spec.members.len() as u32;
    assert!(n <= n_cores, "group of {n} layers exceeds {n_cores} cores");
    let weights: Vec<f64> = spec
        .members
        .iter()
        .map(|&id| {
            let l = dnn.layer(id);
            // Vector-only layers still need a core; weight them by their
            // vector work so they are not starved.
            let macs = l.macs(spec.batch_unit) as f64;
            let vec_ops =
                l.ofmap.elems() as f64 * spec.batch_unit as f64 * l.vector_ops_per_out() as f64;
            (macs + vec_ops * 0.05).max(1.0)
        })
        .collect();
    let total: f64 = weights.iter().sum();
    let mut alloc: Vec<u32> = weights
        .iter()
        .map(|w| ((w / total * n_cores as f64).floor() as u32).max(1))
        .collect();
    // Largest-remainder top-up / trim to hit n_cores exactly.
    loop {
        let used: u32 = alloc.iter().sum();
        match used.cmp(&n_cores) {
            std::cmp::Ordering::Equal => break,
            std::cmp::Ordering::Less => {
                // Give the extra core to the most under-served layer.
                let i = (0..alloc.len())
                    .max_by(|&a, &b| {
                        let ra = weights[a] / alloc[a] as f64;
                        let rb = weights[b] / alloc[b] as f64;
                        ra.partial_cmp(&rb).unwrap()
                    })
                    .expect("non-empty group");
                alloc[i] += 1;
            }
            std::cmp::Ordering::Greater => {
                // Take from the most over-served layer with > 1 core.
                let i = (0..alloc.len())
                    .filter(|&i| alloc[i] > 1)
                    .min_by(|&a, &b| {
                        let ra = weights[a] / alloc[a] as f64;
                        let rb = weights[b] / alloc[b] as f64;
                        ra.partial_cmp(&rb).unwrap()
                    })
                    .expect("must be reducible");
                alloc[i] -= 1;
            }
        }
    }
    alloc
}

/// Builds the stripe-heuristic [`Lms`] for one layer group
/// (buffer-capacity-aware, see [`stripe_lms_with`]).
pub fn stripe_lms(dnn: &Dnn, arch: &ArchConfig, spec: &GroupSpec) -> Lms {
    stripe_lms_with(dnn, arch, spec, true)
}

/// Builds a stripe-heuristic [`Lms`], optionally capacity-aware.
///
/// With `capacity_aware = false` this is the *plain* fmap-stripe of the
/// original Tangram figure (pure H/W partitioning; weights duplicated on
/// every core of the layer) — the baseline the paper's Fig. 9 heatmap
/// depicts. With `true` (the default used everywhere else), layers whose
/// weight slice would overflow half the GLB get K-splits first, which is
/// how production stripe mappers behave and makes T-Map a stronger
/// baseline.
pub fn stripe_lms_with(
    dnn: &Dnn,
    arch: &ArchConfig,
    spec: &GroupSpec,
    capacity_aware: bool,
) -> Lms {
    let order = snake_order(arch);
    let alloc = proportional_allocation(dnn, spec, arch.n_cores());
    let mut cursor = 0usize;
    let mut schemes = Vec::with_capacity(spec.members.len());
    for (i, &id) in spec.members.iter().enumerate() {
        let shape = dnn.layer(id).ofmap;
        // Shrink to a factorable core count if needed (leaves the
        // remainder idle, like real stripe mappers do).
        let usable = largest_factorable(alloc[i], shape, spec.batch_unit);
        let part = if capacity_aware {
            stripe_part_capacity(
                usable,
                shape,
                spec.batch_unit,
                dnn.layer(id).weight_bytes(),
                arch.glb_bytes(),
            )
        } else {
            crate::factor::stripe_part(usable, shape, spec.batch_unit)
        }
        .expect("largest_factorable guarantees a valid Part");
        let cg: Vec<CoreId> = order[cursor..cursor + usable as usize].to_vec();
        cursor += alloc[i] as usize;

        let needs = flow_needs(dnn, spec, id);
        let fd = FlowOfData {
            ifm: if needs.explicit_if { 0 } else { -1 },
            wgt: if needs.explicit_wgt { 0 } else { -1 },
            ofm: if needs.explicit_of { 0 } else { -1 },
        };
        schemes.push(Ms {
            part,
            cg: CoreGroup(cg),
            fd,
        });
    }
    Lms { schemes }
}

/// Rung-0 bound-seeded initial scheme: the baseline `Lms` (stripe or
/// hetero-stripe) with every GEMM-shaped member's [`Part`] swapped for
/// the output-channel-major factorization of its core count.
///
/// For GEMM-shaped layers (FC / weight matmul / 1x1 convolution,
/// [`gemini_sim::bound::gemm_shaped`]) that split makes every part need
/// the identical (whole) input — fetched once via the multicast dedup —
/// while weight and output slices are disjoint covers, which is exactly
/// the DRAM-traffic lower bound of [`gemini_sim::bound::group_bound`].
/// Core groups and flow-of-data entries are untouched, so the result
/// validates whenever the baseline does.
pub fn bound_seed_lms(dnn: &Dnn, spec: &GroupSpec, mut base: Lms) -> Lms {
    for (ms, &id) in base.schemes.iter_mut().zip(&spec.members) {
        let l = dnn.layer(id);
        if !gemini_sim::bound::gemm_shaped(l) {
            continue;
        }
        let n = ms.cg.0.len() as u32;
        if let Some(p) = crate::factor::factorizations(n, l.ofmap, spec.batch_unit)
            .into_iter()
            .max_by_key(|p| (p.k, p.b, p.h, p.w))
        {
            ms.part = p;
        }
    }
    base
}

/// Convenience: the default all-interleaved FD for a layer in a group.
pub fn default_fd(dnn: &Dnn, spec: &GroupSpec, id: gemini_model::LayerId) -> FlowOfData {
    let needs = flow_needs(dnn, spec, id);
    FlowOfData {
        ifm: if needs.explicit_if { 0 } else { -1 },
        wgt: if needs.explicit_wgt { 0 } else { -1 },
        ofm: if needs.explicit_of { 0 } else { -1 },
    }
}

/// Returns [`Part::unit`]-style degenerate schemes for tests and
/// fallbacks: every member on one core (round-robin over the grid).
pub fn trivial_lms(dnn: &Dnn, arch: &ArchConfig, spec: &GroupSpec) -> Lms {
    let order = snake_order(arch);
    let schemes = spec
        .members
        .iter()
        .enumerate()
        .map(|(i, &id)| Ms {
            part: Part::unit(),
            cg: CoreGroup(vec![order[i % order.len()]]),
            fd: default_fd(dnn, spec, id),
        })
        .collect();
    Lms { schemes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_arch::presets;
    use gemini_model::{zoo, LayerId};

    #[test]
    fn snake_order_is_adjacent() {
        let arch = presets::g_arch_72();
        let order = snake_order(&arch);
        assert_eq!(order.len(), 36);
        for w in order.windows(2) {
            let a = arch.coord(w[0]);
            let b = arch.coord(w[1]);
            assert_eq!(a.manhattan(&b), 1, "{a} -> {b} not adjacent");
        }
    }

    #[test]
    fn proportional_allocation_sums_to_cores() {
        let dnn = zoo::two_conv_example();
        let spec = GroupSpec {
            members: vec![LayerId(1), LayerId(2)],
            batch_unit: 2,
        };
        let alloc = proportional_allocation(&dnn, &spec, 36);
        assert_eq!(alloc.iter().sum::<u32>(), 36);
        assert!(alloc.iter().all(|&a| a >= 1));
        // conv1 (32->64 ch) has ~2x the MACs of conv2 (64->32 at same
        // spatial size? conv2: 64*32 vs conv1: 32*64 — equal); allow any
        // near-even split.
        let ratio = alloc[0] as f64 / alloc[1] as f64;
        assert!((0.4..2.5).contains(&ratio), "alloc {alloc:?}");
    }

    #[test]
    fn stripe_lms_validates_and_parses() {
        let dnn = zoo::two_conv_example();
        let arch = presets::g_arch_72();
        let spec = GroupSpec {
            members: vec![LayerId(1), LayerId(2)],
            batch_unit: 2,
        };
        let lms = stripe_lms(&dnn, &arch, &spec);
        lms.validate(&dnn, &arch, &spec).unwrap();
        let gm = lms.parse(&dnn, &spec, &|_| gemini_sim::DramSel::Interleaved);
        gm.validate(&dnn).unwrap();
    }

    #[test]
    fn stripe_uses_contiguous_runs() {
        let dnn = zoo::two_conv_example();
        let arch = presets::g_arch_72();
        let spec = GroupSpec {
            members: vec![LayerId(1), LayerId(2)],
            batch_unit: 2,
        };
        let lms = stripe_lms(&dnn, &arch, &spec);
        let order = snake_order(&arch);
        // Layer 1's CG must be a prefix of snake order.
        let cg1 = &lms.schemes[0].cg.0;
        assert_eq!(&order[..cg1.len()], cg1.as_slice());
    }

    #[test]
    fn stripe_on_deep_group_of_resnet() {
        let dnn = zoo::resnet50();
        let arch = presets::g_arch_72();
        // First ~10 computable layers as one group.
        let members: Vec<LayerId> = dnn.compute_ids().take(10).collect();
        let spec = GroupSpec {
            members,
            batch_unit: 1,
        };
        let lms = stripe_lms(&dnn, &arch, &spec);
        lms.validate(&dnn, &arch, &spec).unwrap();
        // All 36 cores allocated (some possibly idle after shrink).
        assert!(lms.total_core_slots() <= 36);
        assert!(lms.total_core_slots() >= 10);
    }

    #[test]
    fn trivial_lms_valid() {
        let dnn = zoo::two_conv_example();
        let arch = presets::g_arch_72();
        let spec = GroupSpec {
            members: vec![LayerId(1), LayerId(2)],
            batch_unit: 1,
        };
        let lms = trivial_lms(&dnn, &arch, &spec);
        lms.validate(&dnn, &arch, &spec).unwrap();
    }
}
