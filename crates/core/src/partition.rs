//! DP-based graph partitioning (the "Graph Partition Engine" of Fig. 4).
//!
//! The paper adopts Tangram's dynamic-programming partitioner: the DNN's
//! topological order is segmented into contiguous *layer groups*, jointly
//! choosing each group's *batch unit* (samples per pipeline stage). The
//! DP minimizes an additive analytic cost per group — an estimate of the
//! group's energy-delay contribution that accounts for DRAM traffic
//! avoided by on-chip forwarding, weight residency in the aggregate GLB,
//! pipeline fill/drain overhead, and the D2D penalty of spreading a
//! pipeline across chiplets. The *spatial* mapping inside each group is
//! then refined by the stripe heuristic and simulated annealing.

use serde::{Deserialize, Serialize};

use gemini_arch::ArchConfig;
use gemini_model::{Dnn, LayerId};

use crate::encoding::GroupSpec;

/// Options for the graph partitioner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionOptions {
    /// Maximum layers per group (also bounded by the core count).
    pub max_group_layers: usize,
    /// Candidate batch units; values above the batch are clamped.
    pub batch_units: Vec<u32>,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        Self {
            max_group_layers: 24,
            batch_units: vec![1, 2, 4, 8, 16],
        }
    }
}

/// The partition of a DNN into layer groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphPartition {
    /// Groups in execution order.
    pub groups: Vec<GroupSpec>,
}

impl GraphPartition {
    /// Total number of layer groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group index containing a layer, if any.
    pub fn group_of(&self, id: LayerId) -> Option<usize> {
        self.groups.iter().position(|g| g.members.contains(&id))
    }

    /// Average number of layers processed simultaneously (the metric of
    /// the paper's core-granularity discussion, Sec. VII-A2), weighted
    /// by group MACs.
    pub fn avg_layers_concurrent(&self, dnn: &Dnn) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for g in &self.groups {
            let macs: u64 = g.members.iter().map(|&m| dnn.layer(m).macs(1)).sum();
            weighted += g.members.len() as f64 * macs as f64;
            total += macs as f64;
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }
}

/// Energy constants mirrored from the evaluator for the DP's analytic
/// estimate (pJ/byte and pJ/MAC); exactness is unnecessary, relative
/// magnitudes drive the segmentation.
const E_DRAM: f64 = 80.0;
const E_NOC_HOP: f64 = 0.6;
const E_MAC: f64 = 0.25;

/// Partitions a DNN into layer groups with batch units, Tangram-style.
pub fn partition_graph(
    dnn: &Dnn,
    arch: &ArchConfig,
    batch: u32,
    opts: &PartitionOptions,
) -> GraphPartition {
    let layers: Vec<LayerId> = dnn.compute_ids().collect();
    let n = layers.len();
    if n == 0 {
        return GraphPartition { groups: vec![] };
    }
    let max_len = opts.max_group_layers.min(arch.n_cores() as usize).max(1);
    let mut units: Vec<u32> = opts
        .batch_units
        .iter()
        .map(|&u| u.min(batch))
        .filter(|&u| u >= 1)
        .collect();
    units.sort_unstable();
    units.dedup();

    // dp[i]: best cost covering layers[0..i]; choice[i] = (j, batch_unit)
    // meaning the last group is layers[j..i].
    let mut dp = vec![f64::INFINITY; n + 1];
    let mut choice = vec![(0usize, 1u32); n + 1];
    dp[0] = 0.0;
    for i in 1..=n {
        for j in i.saturating_sub(max_len)..i {
            if !dp[j].is_finite() {
                continue;
            }
            let seg = &layers[j..i];
            for &bu in &units {
                let c = group_cost(dnn, arch, seg, bu, batch);
                if dp[j] + c < dp[i] {
                    dp[i] = dp[j] + c;
                    choice[i] = (j, bu);
                }
            }
        }
    }

    // Reconstruct.
    let mut groups = Vec::new();
    let mut i = n;
    while i > 0 {
        let (j, bu) = choice[i];
        groups.push(GroupSpec {
            members: layers[j..i].to_vec(),
            batch_unit: bu,
        });
        i = j;
    }
    groups.reverse();
    GraphPartition { groups }
}

/// Analytic cost estimate of one candidate group (lower is better).
///
/// The DP needs an *additive* objective: summing per-group `delay *
/// energy` products would systematically favor fragmentation (for any
/// split, `sum(d_i * e_i) <= (sum d)(sum e)`). We therefore minimize the
/// energy-equivalent `E + P_ref * D`, with `P_ref` a chip-power scale
/// derived from the architecture — a standard scalarization whose
/// optimum tracks the E*D Pareto front. `f64::INFINITY` marks infeasible
/// segments.
pub fn group_cost(dnn: &Dnn, arch: &ArchConfig, seg: &[LayerId], bu: u32, batch: u32) -> f64 {
    let m = arch.n_cores() as f64;
    let in_seg = |l: LayerId| seg.contains(&l);
    let rounds = (batch as f64 / bu as f64).ceil().max(1.0);
    let depth = dnn.depth_within(seg) as f64;

    let mut macs: u64 = 0;
    let mut weight_bytes: u64 = 0;
    let mut ext_io_bytes: f64 = 0.0;
    let mut internal_bytes: f64 = 0.0;
    let mut act_bytes: f64 = 0.0;
    let mut max_layer_macs: u64 = 0;

    for &id in seg {
        let l = dnn.layer(id);
        macs += l.macs(bu);
        max_layer_macs = max_layer_macs.max(l.macs(bu));
        weight_bytes += l.weight_bytes();
        let out_bytes = l.ofmap.bytes() * bu as u64;
        act_bytes += out_bytes as f64;
        // External inputs (DNN input or earlier groups) come from DRAM.
        for &p in dnn.preds(id) {
            let vol = dnn.layer(p).ofmap.bytes() as f64 * bu as f64;
            act_bytes += vol;
            if in_seg(p) {
                internal_bytes += vol;
            } else {
                ext_io_bytes += vol;
            }
        }
        // External outputs go to DRAM.
        let succs = dnn.succs(id);
        if succs.is_empty() || succs.iter().any(|&s| !in_seg(s)) {
            ext_io_bytes += out_bytes as f64;
        }
    }

    // Aggregate working set (mirrors the evaluator's per-core model):
    // weights plus one stage's activations must fit the combined GLBs;
    // overflow spills to DRAM every round (write + re-read).
    let glb_total = (arch.n_cores() as u64 * arch.glb_bytes()) as f64;
    let working_set = weight_bytes as f64 + act_bytes;
    let overflow = (working_set - glb_total).max(0.0);
    // Weights load once per group execution, amortized over the rounds.
    let dram_bytes = ext_io_bytes + weight_bytes as f64 / rounds + 2.0 * overflow;
    let freq = arch.freq_ghz() * 1e9;

    // Per-stage times. Compute assumes proportional allocation, so the
    // slowest stage is roughly total/M but never better than the largest
    // layer on its share of cores.
    let peak = m * arch.macs_per_core() as f64 * freq;
    let t_compute = (macs as f64 / peak).max(max_layer_macs as f64 / peak * 1.2);
    let t_dram = dram_bytes / (arch.dram_bw() * 1e9);
    // Internal forwarding rides the NoC; average distance ~ sqrt(M)/2
    // hops spread over ~M horizontal link columns. Cross-chiplet
    // fraction pays the D2D bandwidth ratio.
    let avg_hops = (m.sqrt() / 2.0).max(1.0);
    let noc_cap = arch.noc_bw() * 1e9 * m.sqrt();
    let cross_frac = 1.0 - 1.0 / arch.n_chiplets() as f64;
    let d2d_cap = arch.d2d_bw() * 1e9 * m.sqrt();
    let t_net = internal_bytes * avg_hops / noc_cap + internal_bytes * cross_frac / d2d_cap;
    let stage =
        t_compute.max(t_dram).max(t_net / depth.max(1.0)) + gemini_sim::evaluate::STAGE_OVERHEAD_S;
    let delay = stage * (rounds + depth - 1.0) + gemini_sim::evaluate::GROUP_OVERHEAD_S;

    let energy = (dram_bytes * rounds * E_DRAM
        + internal_bytes * rounds * avg_hops * E_NOC_HOP
        + macs as f64 * rounds * E_MAC)
        * 1e-12;

    // Chip-power scale: ~3x the peak MAC power covers buffers, network
    // and DRAM interface activity.
    let p_ref = m * arch.macs_per_core() as f64 * freq * E_MAC * 1e-12 * 3.0;
    energy + delay * p_ref
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_arch::presets;
    use gemini_model::zoo;

    fn partition(dnn: &Dnn, batch: u32) -> GraphPartition {
        partition_graph(
            dnn,
            &presets::g_arch_72(),
            batch,
            &PartitionOptions::default(),
        )
    }

    #[test]
    fn covers_all_compute_layers_once() {
        let dnn = zoo::resnet50();
        let p = partition(&dnn, 16);
        let mut seen = std::collections::HashSet::new();
        for g in &p.groups {
            assert!(!g.members.is_empty());
            assert!(g.members.len() <= 36);
            for &m in &g.members {
                assert!(!dnn.layer(m).is_input());
                assert!(seen.insert(m), "{m} appears twice");
            }
        }
        assert_eq!(seen.len(), dnn.compute_ids().count());
    }

    #[test]
    fn groups_are_contiguous_topo_segments() {
        let dnn = zoo::transformer_base();
        let p = partition(&dnn, 16);
        let layers: Vec<LayerId> = dnn.compute_ids().collect();
        let mut idx = 0;
        for g in &p.groups {
            for &m in &g.members {
                assert_eq!(m, layers[idx], "groups must tile the topo order");
                idx += 1;
            }
        }
    }

    #[test]
    fn pipelining_wins_over_singletons() {
        // LP mapping exists to keep dependent layers on-chip: the DP
        // should form multi-layer groups for batched ResNet.
        let dnn = zoo::resnet50();
        let p = partition(&dnn, 16);
        let multi = p.groups.iter().filter(|g| g.members.len() > 1).count();
        assert!(
            multi * 2 > p.groups.len(),
            "most groups should pipeline: {multi}/{} are multi-layer",
            p.groups.len()
        );
        assert!(p.avg_layers_concurrent(&dnn) > 1.5);
    }

    #[test]
    fn batch_units_divide_work() {
        let dnn = zoo::resnet50();
        let p = partition(&dnn, 64);
        for g in &p.groups {
            assert!(g.batch_unit >= 1 && g.batch_unit <= 64);
        }
        // At batch 64 at least some groups should use batch units > 1
        // (sub-batching amortizes fill/drain).
        assert!(p.groups.iter().any(|g| g.batch_unit > 1));
    }

    #[test]
    fn batch_one_forces_unit_batch() {
        let dnn = zoo::googlenet();
        let p = partition(&dnn, 1);
        assert!(p.groups.iter().all(|g| g.batch_unit == 1));
    }

    #[test]
    fn group_of_finds_layers() {
        let dnn = zoo::two_conv_example();
        let p = partition(&dnn, 4);
        assert!(p.group_of(LayerId(1)).is_some());
        assert_eq!(
            p.group_of(LayerId(0)),
            None,
            "input pseudo-layer is unmapped"
        );
    }

    #[test]
    fn infinite_costs_never_win() {
        let dnn = zoo::pnasnet();
        let p = partition(&dnn, 8);
        assert!(!p.is_empty());
    }

    #[test]
    fn group_cost_prefers_feasible_residency() {
        // A single huge-weight FC layer: streaming cost should exceed a
        // small conv's cost by orders of magnitude.
        let dnn = zoo::resnet50();
        let arch = presets::g_arch_72();
        let layers: Vec<LayerId> = dnn.compute_ids().collect();
        let c_small = group_cost(&dnn, &arch, &layers[..1], 1, 1);
        assert!(c_small.is_finite());
        assert!(c_small > 0.0);
    }
}
