//! The dynamic batcher's knobs.

use serde::{Deserialize, Serialize};

/// How the server groups queued requests into batches.
///
/// A batch launches at the earliest instant at which the server is free
/// and either (a) `max_batch` requests are queued, or (b) the oldest
/// queued request has waited `max_queue_delay_s`, or (c) no further
/// arrivals exist. Requests that arrive before the launch instant join
/// the batch (up to `max_batch`), FCFS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatcherConfig {
    /// Largest batch the server executes at once (>= 1).
    pub max_batch: usize,
    /// Longest the queue head may wait for co-batched requests before
    /// the batch launches anyway (seconds).
    pub max_queue_delay_s: f64,
}

impl Default for BatcherConfig {
    /// Batch up to 8 requests, holding the queue head at most 2 ms.
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_queue_delay_s: 2e-3,
        }
    }
}

impl BatcherConfig {
    /// A batcher scaled to an offered rate: batch up to 8, hold the
    /// queue head for at most four mean inter-arrival gaps. Used by the
    /// serving objectives so the only free parameter is the rate.
    pub fn for_rate(rate_rps: f64) -> Self {
        assert!(rate_rps > 0.0, "rate must be positive, got {rate_rps}");
        Self {
            max_batch: 8,
            max_queue_delay_s: 4.0 / rate_rps,
        }
    }
}
