//! Discrete-event queueing replay of an arrival stream against mapped
//! per-step latencies.
//!
//! The model is one accelerator running one workload: requests arrive
//! (see [`super::arrivals`]), the dynamic batcher groups them (see
//! [`super::batcher`]), and each batch occupies the accelerator for its
//! service time — `steps_per_request` decode steps at the mapped
//! per-step latency. Batches do not admit late joiners once launched
//! (no continuous batching), and every request in a batch completes
//! when the batch does, so a request's served latency is queueing wait
//! plus batch service.
//!
//! The replay is a pure function of its inputs — no wall clock, no
//! global state — so served-latency distributions are bit-identical
//! across runs, machines and thread counts.

use serde::{Deserialize, Serialize};

use super::batcher::BatcherConfig;

/// The served-latency distribution and queue telemetry of one replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServedStats {
    /// Per-request served latencies (completion minus arrival), sorted
    /// ascending.
    pub latencies_s: Vec<f64>,
    /// Number of batches launched.
    pub batches: usize,
    /// Deepest the arrived-but-unserved queue ever got (measured at
    /// batch launches, including the batch being launched).
    pub max_queue_depth: usize,
    /// Completion instant of the last batch (seconds).
    pub makespan_s: f64,
}

impl ServedStats {
    /// Requests served.
    pub fn served(&self) -> usize {
        self.latencies_s.len()
    }

    /// Nearest-rank quantile of the served latency, `p` in `(0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics when no request was served or `p` is out of range.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p <= 100.0,
            "quantile must be in (0, 100], got {p}"
        );
        let n = self.latencies_s.len();
        assert!(n > 0, "no served requests");
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.latencies_s[rank.clamp(1, n) - 1]
    }

    /// Median served latency.
    pub fn p50(&self) -> f64 {
        self.quantile(50.0)
    }

    /// 95th-percentile served latency.
    pub fn p95(&self) -> f64 {
        self.quantile(95.0)
    }

    /// 99th-percentile served latency.
    pub fn p99(&self) -> f64 {
        self.quantile(99.0)
    }

    /// Mean served latency.
    pub fn mean(&self) -> f64 {
        let n = self.latencies_s.len().max(1) as f64;
        self.latencies_s.iter().sum::<f64>() / n
    }

    /// Fraction of requests served within `budget_s` (the SLA goodput,
    /// in `[0, 1]`).
    pub fn goodput(&self, budget_s: f64) -> f64 {
        if self.latencies_s.is_empty() {
            return 0.0;
        }
        let ok = self.latencies_s.partition_point(|&l| l <= budget_s);
        ok as f64 / self.latencies_s.len() as f64
    }
}

/// Replays `times` (sorted arrival instants) through the batcher at a
/// fixed batch service time and returns the served distribution.
///
/// # Panics
///
/// Panics when `service_s` is not positive and finite or the arrival
/// instants are not sorted.
pub fn replay(times: &[f64], cfg: &BatcherConfig, service_s: f64) -> ServedStats {
    assert!(
        service_s > 0.0 && service_s.is_finite(),
        "batch service time must be positive and finite, got {service_s}"
    );
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "arrival instants must be sorted"
    );
    let n = times.len();
    let cap = cfg.max_batch.max(1);
    let mut latencies = Vec::with_capacity(n);
    let mut free = 0.0f64;
    let mut head = 0usize;
    let mut batches = 0usize;
    let mut max_depth = 0usize;
    while head < n {
        // The batcher's release instant: the arrival that fills the
        // batch, or the queue head's deadline, or (when fewer than a
        // full batch remain) the final arrival — whichever is earliest.
        let fill = head + cap - 1;
        let deadline = times[head] + cfg.max_queue_delay_s;
        let trigger = if fill < n {
            times[fill].min(deadline)
        } else {
            times[n - 1].min(deadline)
        };
        let start = free.max(trigger);
        // FCFS members: everyone who arrived by the launch instant,
        // capped at the batch size. `times[head] <= trigger <= start`
        // guarantees at least one member.
        let mut count = 0usize;
        while head + count < n && count < cap && times[head + count] <= start {
            count += 1;
        }
        let mut arrived = head + count;
        while arrived < n && times[arrived] <= start {
            arrived += 1;
        }
        max_depth = max_depth.max(arrived - head);
        let done = start + service_s;
        for &t in &times[head..head + count] {
            latencies.push(done - t);
        }
        free = done;
        head += count;
        batches += 1;
    }
    latencies.sort_by(f64::total_cmp);
    ServedStats {
        latencies_s: latencies,
        batches,
        max_queue_depth: max_depth,
        makespan_s: free,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::arrivals::ArrivalSpec;

    fn cfg(max_batch: usize, delay: f64) -> BatcherConfig {
        BatcherConfig {
            max_batch,
            max_queue_delay_s: delay,
        }
    }

    #[test]
    fn uncontended_requests_see_service_time_only() {
        // Arrivals far apart, batcher releases immediately.
        let times = [0.0, 10.0, 20.0];
        let s = replay(&times, &cfg(4, 0.0), 1.0);
        assert_eq!(s.served(), 3);
        assert_eq!(s.batches, 3);
        assert!(s.latencies_s.iter().all(|&l| (l - 1.0).abs() < 1e-12));
        assert_eq!(s.max_queue_depth, 1);
        assert!((s.makespan_s - 21.0).abs() < 1e-12);
    }

    #[test]
    fn full_batches_launch_without_waiting_for_the_deadline() {
        // Four simultaneous arrivals, batch of four: one batch at t=0.
        let times = [0.0, 0.0, 0.0, 0.0];
        let s = replay(&times, &cfg(4, 100.0), 2.0);
        assert_eq!(s.batches, 1);
        assert!(s.latencies_s.iter().all(|&l| (l - 2.0).abs() < 1e-12));
    }

    #[test]
    fn queue_head_deadline_bounds_the_wait() {
        // One lonely request, huge batch: launches at its deadline.
        let times = [1.0];
        let s = replay(&times, &cfg(8, 0.5), 1.0);
        assert_eq!(s.batches, 1);
        // Rule (c): the final arrival releases the batch immediately —
        // the deadline (1.5) never binds because no co-batched request
        // can still arrive.
        assert!((s.latencies_s[0] - 1.0).abs() < 1e-12);
        // Two requests spaced wider than the deadline: the head waits
        // out its full deadline before launching alone.
        let times = [0.0, 10.0];
        let s = replay(&times, &cfg(8, 0.5), 1.0);
        assert_eq!(s.batches, 2);
        assert!(
            (s.latencies_s[1] - 1.5).abs() < 1e-12,
            "{:?}",
            s.latencies_s
        );
    }

    #[test]
    fn busy_server_backlog_is_drained_in_full_batches() {
        // 8 arrivals at t=0, batch of 2, service 1s: 4 sequential
        // batches; the last pair waits 3s.
        let times = [0.0; 8];
        let s = replay(&times, &cfg(2, 100.0), 1.0);
        assert_eq!(s.batches, 4);
        assert_eq!(s.max_queue_depth, 8);
        assert!((s.quantile(100.0) - 4.0).abs() < 1e-12);
        assert!((s.p50() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_ordered_and_goodput_counts_within_budget() {
        let arr = ArrivalSpec::poisson(200.0, 512, 11).times();
        let s = replay(&arr, &BatcherConfig::for_rate(200.0), 0.01);
        assert_eq!(s.served(), 512);
        assert!(s.p99() >= s.p95() && s.p95() >= s.p50());
        assert!(s.p50() >= 0.01, "latency is bounded below by service");
        let g_all = s.goodput(f64::INFINITY);
        assert!((g_all - 1.0).abs() < 1e-12);
        let g_none = s.goodput(0.0);
        assert_eq!(g_none, 0.0);
        let g_mid = s.goodput(s.p50());
        assert!((0.5..=1.0).contains(&g_mid));
    }

    #[test]
    fn replay_is_bit_identical() {
        let arr = ArrivalSpec::poisson(150.0, 256, 99).times();
        let a = replay(&arr, &BatcherConfig::default(), 0.004);
        let b = replay(&arr, &BatcherConfig::default(), 0.004);
        assert_eq!(a, b);
        assert!(a
            .latencies_s
            .iter()
            .zip(&b.latencies_s)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
