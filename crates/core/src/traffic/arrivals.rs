//! Deterministic request-arrival processes.
//!
//! A serving experiment must be reproducible byte for byte (the same
//! invariant the campaign driver holds), so arrivals are never drawn
//! from wall-clock randomness: a Poisson stream is generated from a
//! seeded splitmix64 generator, and a trace is an explicit list of
//! arrival instants (parsed from a text file, one per line). Either
//! way, [`ArrivalSpec::times`] is a pure function of the spec.

use serde::{Deserialize, Serialize};

/// One step of the splitmix64 generator — the same finalizer family the
/// campaign sharder uses for claim keys, here run as a sequential
/// stream: state advances by the golden-ratio increment, the output is
/// the finalized state.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps 64 random bits to the open unit interval `(0, 1)` — never 0,
/// so `-ln(u)` below is always finite.
fn unit_open(bits: u64) -> f64 {
    ((bits >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// A seeded Poisson arrival stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonSpec {
    /// Mean arrival rate (requests per second). Must be positive.
    pub rate_rps: f64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Seed of the splitmix64 stream.
    pub seed: u64,
}

impl PoissonSpec {
    /// The arrival instants: cumulative sums of exponentially
    /// distributed inter-arrival gaps (inverse-CDF sampling), sorted
    /// ascending by construction.
    pub fn times(&self) -> Vec<f64> {
        assert!(
            self.rate_rps > 0.0 && self.rate_rps.is_finite(),
            "Poisson rate must be positive and finite, got {}",
            self.rate_rps
        );
        let mut state = self.seed;
        let mut t = 0.0f64;
        (0..self.requests)
            .map(|_| {
                let u = unit_open(splitmix64(&mut state));
                t += -u.ln() / self.rate_rps;
                t
            })
            .collect()
    }
}

/// Where requests come from: a seeded Poisson process or an explicit
/// trace of arrival instants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Seeded synthetic arrivals.
    Poisson(PoissonSpec),
    /// Explicit arrival instants (seconds), non-decreasing.
    Trace(Vec<f64>),
}

impl ArrivalSpec {
    /// A Poisson spec in one call.
    pub fn poisson(rate_rps: f64, requests: usize, seed: u64) -> Self {
        Self::Poisson(PoissonSpec {
            rate_rps,
            requests,
            seed,
        })
    }

    /// The arrival instants, sorted ascending.
    pub fn times(&self) -> Vec<f64> {
        match self {
            Self::Poisson(p) => p.times(),
            Self::Trace(t) => t.clone(),
        }
    }

    /// Number of requests the spec describes.
    pub fn len(&self) -> usize {
        match self {
            Self::Poisson(p) => p.requests,
            Self::Trace(t) => t.len(),
        }
    }

    /// Whether the spec describes no requests at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parses a trace: one arrival instant (seconds) per line; blank
    /// lines and `#` comments are skipped. Instants must be finite,
    /// non-negative and non-decreasing.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending line.
    pub fn from_trace_str(s: &str) -> Result<Self, String> {
        let mut times = Vec::new();
        let mut prev = 0.0f64;
        for (ln, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let t: f64 = line
                .parse()
                .map_err(|_| format!("trace line {}: '{line}' is not a number", ln + 1))?;
            if !t.is_finite() || t < 0.0 {
                return Err(format!(
                    "trace line {}: arrival instant must be finite and >= 0, got {t}",
                    ln + 1
                ));
            }
            if t < prev {
                return Err(format!(
                    "trace line {}: arrivals must be non-decreasing ({t} after {prev})",
                    ln + 1
                ));
            }
            prev = t;
            times.push(t);
        }
        Ok(Self::Trace(times))
    }

    /// Reads and parses a trace file (see [`Self::from_trace_str`]).
    ///
    /// # Errors
    ///
    /// I/O errors and malformed lines are reported with the path.
    pub fn from_trace_file(path: &std::path::Path) -> Result<Self, String> {
        let s = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trace {}: {e}", path.display()))?;
        Self::from_trace_str(&s).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_sorted_positive_and_seeded() {
        let spec = PoissonSpec {
            rate_rps: 100.0,
            requests: 256,
            seed: 7,
        };
        let a = spec.times();
        let b = spec.times();
        assert_eq!(a.len(), 256);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert!(a[0] > 0.0);
        // Bit-identical regeneration.
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
        // A different seed is a different stream.
        let c = PoissonSpec {
            seed: 8,
            ..spec.clone()
        }
        .times();
        assert!(a.iter().zip(&c).any(|(x, y)| x.to_bits() != y.to_bits()));
    }

    #[test]
    fn poisson_mean_gap_tracks_rate() {
        let spec = PoissonSpec {
            rate_rps: 50.0,
            requests: 4096,
            seed: 3,
        };
        let t = spec.times();
        let mean_gap = t.last().unwrap() / t.len() as f64;
        let expect = 1.0 / 50.0;
        assert!(
            (mean_gap - expect).abs() < 0.1 * expect,
            "mean gap {mean_gap} vs expected {expect}"
        );
    }

    #[test]
    fn trace_parsing_round_trips_and_rejects() {
        let spec = ArrivalSpec::from_trace_str("# comment\n0.0\n0.5\n\n1.25\n").unwrap();
        assert_eq!(spec.times(), vec![0.0, 0.5, 1.25]);
        assert!(ArrivalSpec::from_trace_str("0.5\n0.25\n")
            .unwrap_err()
            .contains("non-decreasing"));
        assert!(ArrivalSpec::from_trace_str("abc\n")
            .unwrap_err()
            .contains("not a number"));
        assert!(ArrivalSpec::from_trace_str("-1\n")
            .unwrap_err()
            .contains(">= 0"));
    }
}
