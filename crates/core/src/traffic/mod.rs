//! Serving-traffic model: arrivals, batching, and queueing replay for
//! LLM-decode workloads (docs/CAMPAIGNS.md, "Objectives").
//!
//! The paper's objectives price one isolated inference; a serving
//! deployment instead sees a *stream* of requests whose tail latency is
//! dominated by queueing and batching, not by the mapped step latency
//! alone. This module closes that gap with a deliberately small model:
//!
//! * [`arrivals`] — deterministic arrival streams: seeded Poisson
//!   (splitmix64, no wall clock) or a trace file;
//! * [`batcher`] — the dynamic batcher policy (max batch size, max
//!   queue delay);
//! * [`queue`] — an FCFS discrete-event replay of the stream against a
//!   fixed batch service time, yielding the served-latency
//!   distribution ([`ServedStats`]: p50/p95/p99, goodput, queue depth).
//!
//! Everything here is a pure function of its inputs, so traffic-derived
//! objective values inherit the campaign layer's bit-identical
//! determinism across runs, machines and thread counts.
//!
//! [`serve_at`] is the canonical scenario the SLA-aware objectives
//! evaluate (`p99@rate`, `goodput@rate:budget` — see
//! [`crate::objective::ObjectiveSpec`]); [`decode_latency_curve`] maps
//! a decode workload once and sweeps its sequence positions to produce
//! the latency-vs-position curve the step latency is drawn from.

pub mod arrivals;
pub mod batcher;
pub mod queue;

pub use arrivals::{ArrivalSpec, PoissonSpec};
pub use batcher::BatcherConfig;
pub use queue::{replay, ServedStats};

use gemini_model::zoo::decoder::{self, DecodeSpec};
use gemini_model::Dnn;
use gemini_sim::{sweep_positions, Evaluator, SweepStats};

use crate::engine::{parse_all, MappingEngine, MappingOptions};

/// Requests in the canonical objective scenario: enough for a stable
/// nearest-rank p99 (the top 1% is ~5 requests) while keeping the
/// replay far cheaper than the mapping it scores.
pub const DEFAULT_REQUESTS: usize = 512;

/// Decode steps per request in the canonical scenario — a short
/// generation, so batch service time is `steps x step latency`.
pub const DEFAULT_STEPS_PER_REQUEST: usize = 32;

/// Arrival seed of the canonical scenario. Fixed so every objective
/// evaluation replays the same stream; campaign fingerprints depend on
/// it.
pub const DEFAULT_SEED: u64 = 0x6765_6d69_6e69;

/// Replays an arrival stream against a mapped per-step latency:
/// requests of `steps_per_request` decode steps, batched by `cfg`.
///
/// # Panics
///
/// Panics when the inputs are degenerate (see [`queue::replay`] and
/// [`ArrivalSpec::times`]).
pub fn serve(
    arrivals: &ArrivalSpec,
    cfg: &BatcherConfig,
    step_latency_s: f64,
    steps_per_request: usize,
) -> ServedStats {
    assert!(steps_per_request > 0, "requests must take at least a step");
    let times = arrivals.times();
    queue::replay(&times, cfg, step_latency_s * steps_per_request as f64)
}

/// The canonical serving scenario behind the `p99@rate` and
/// `goodput@rate:budget` objectives: [`DEFAULT_REQUESTS`] Poisson
/// arrivals at `rate_rps` (seed [`DEFAULT_SEED`]),
/// [`DEFAULT_STEPS_PER_REQUEST`]-step requests, batcher
/// [`BatcherConfig::for_rate`].
///
/// A pure function of `(rate_rps, step_latency_s)` — the determinism
/// anchor that keeps traffic-scored campaigns bit-identical.
pub fn serve_at(rate_rps: f64, step_latency_s: f64) -> ServedStats {
    serve(
        &ArrivalSpec::poisson(rate_rps, DEFAULT_REQUESTS, DEFAULT_SEED),
        &BatcherConfig::for_rate(rate_rps),
        step_latency_s,
        DEFAULT_STEPS_PER_REQUEST,
    )
}

/// One point of a latency-vs-position curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Sequence position (KV-cache rows per block).
    pub seq_pos: u32,
    /// Mapped decode-step latency at this position (seconds).
    pub delay_s: f64,
    /// Mapped decode-step energy at this position (joules).
    pub energy_j: f64,
}

/// The mapped latency-vs-position curve of a decode workload, plus the
/// member-record reuse telemetry of the sweep.
#[derive(Debug, Clone)]
pub struct LatencyCurve {
    /// One point per requested position, in input order.
    pub points: Vec<CurvePoint>,
    /// How much of the reference mapping's evaluation was reused.
    pub stats: SweepStats,
}

impl LatencyCurve {
    /// The curve point at `seq_pos`.
    pub fn at(&self, seq_pos: u32) -> Option<&CurvePoint> {
        self.points.iter().find(|p| p.seq_pos == seq_pos)
    }
}

/// Maps a decode workload once — at the **largest** requested position,
/// where the KV-cache working set peaks — and evaluates every listed
/// position by transplanting that mapping and reusing untouched member
/// records ([`gemini_sim::sweep_positions`]).
///
/// # Panics
///
/// Panics when `positions` is empty or contains a zero.
pub fn decode_latency_curve(
    ev: &Evaluator,
    base: &str,
    spec: &DecodeSpec,
    positions: &[u32],
    batch: u32,
    opts: &MappingOptions,
) -> LatencyCurve {
    assert!(!positions.is_empty(), "need at least one position");
    assert!(
        positions.iter().all(|&p| p > 0),
        "sequence positions start at 1"
    );
    let graphs: Vec<Dnn> = positions
        .iter()
        .map(|&p| decoder::decode_step(base, &spec.at(p)))
        .collect();
    let ref_idx = positions
        .iter()
        .enumerate()
        .max_by_key(|&(_, &p)| p)
        .map(|(i, _)| i)
        .expect("positions is non-empty");
    let engine = MappingEngine::new(ev);
    let mapped = engine.map(&graphs[ref_idx], batch, opts);
    let ref_gms = parse_all(&graphs[ref_idx], &mapped.partition, &mapped.lms);
    let pairs: Vec<(u32, &Dnn)> = positions.iter().copied().zip(graphs.iter()).collect();
    let (evals, stats) = sweep_positions(ev, &pairs, ref_idx, &ref_gms, batch);
    LatencyCurve {
        points: evals
            .iter()
            .map(|e| CurvePoint {
                seq_pos: e.seq_pos,
                delay_s: e.report.delay_s,
                energy_j: e.report.energy.total(),
            })
            .collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_at_is_deterministic_and_bounded_below() {
        let a = serve_at(300.0, 0.0001);
        let b = serve_at(300.0, 0.0001);
        assert_eq!(a, b);
        // `(start + service) - arrival` can round one ULP below the
        // service time, so the floor holds to a relative epsilon.
        let floor = 0.0001 * DEFAULT_STEPS_PER_REQUEST as f64 * (1.0 - 1e-12);
        assert_eq!(a.served(), DEFAULT_REQUESTS);
        assert!(a.latencies_s.iter().all(|&l| l >= floor));
        assert!(a.p99() >= a.p50() && a.p50() >= floor);
    }

    #[test]
    fn served_latency_is_monotone_in_step_latency() {
        // The FCFS replay is pointwise monotone in service time — the
        // property that keeps the traffic objectives sound under the
        // DSE's rung-0 bound pruning.
        let slow = serve_at(200.0, 0.0002);
        let fast = serve_at(200.0, 0.0001);
        assert!(slow.p50() >= fast.p50());
        assert!(slow.p99() >= fast.p99());
        assert!(slow.goodput(0.02) <= fast.goodput(0.02));
    }

    #[test]
    fn heavier_step_latency_degrades_goodput_to_zero() {
        // A service time far beyond the arrival gap drives the queue
        // into overload: goodput under any finite budget collapses.
        let s = serve_at(1000.0, 0.01);
        assert!(s.goodput(0.5) < 1.0);
    }
}
