//! Heterogeneous-architecture design-space exploration (Sec. V-D).
//!
//! The homogeneous DSE of [`crate::dse`] sweeps one (MACs, GLB) point
//! for all cores. This engine makes the *per-chiplet class assignment*
//! an explored dimension: every chiplet of a fixed fabric independently
//! picks its core class from a candidate list, each assignment is
//! mapped with the heterogeneity-aware engine
//! ([`crate::engine::MappingEngine::map_hetero`]) and priced with
//! [`gemini_cost::CostModel::evaluate_hetero`], and the winner minimizes
//! the same `MC^alpha * E^beta * D^gamma` objective.
//!
//! Chiplet position matters (DRAM sits on the west/east edges; the
//! snake-order initializer walks rows), so assignments are *not*
//! deduplicated up to permutation — `(big, little)` and `(little, big)`
//! are distinct candidates.

use gemini_arch::{ArchConfig, CoreClass, HeteroSpec};
use gemini_cost::CostModel;
use gemini_model::Dnn;
use gemini_sim::Evaluator;

use crate::dse::{
    bound_seed_mask, seed_count, survivors_needed, BoundPlan, CandidateBound, DseOptions,
    Objective, RecordBound,
};
use crate::engine::{parse_all, MappingEngine};
use crate::fidelity::{DseReport, FluidRescore};
use crate::partition::partition_graph;

/// The heterogeneous DSE grid: a fixed fabric whose chiplets each pick
/// one of the candidate classes.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroDseSpec {
    /// The fabric: grid, cuts, bandwidths and DRAM are fixed; the
    /// per-core MACs/GLB of this config are ignored.
    pub fabric: ArchConfig,
    /// Candidate core classes.
    pub classes: Vec<CoreClass>,
}

impl HeteroDseSpec {
    /// Enumerates every per-chiplet class assignment (`K^C` candidates
    /// for `K` classes and `C` chiplets).
    ///
    /// # Panics
    ///
    /// Panics if the grid would exceed 4096 candidates — heterogeneous
    /// DSE is meant for the coarse chiplet counts the paper finds
    /// optimal (2-4), not for 36-chiplet Simba-granularity fabrics.
    pub fn candidates(&self) -> Vec<HeteroSpec> {
        let c = self.fabric.n_chiplets() as usize;
        let k = self.classes.len();
        let total = (k as u64).checked_pow(c as u32).unwrap_or(u64::MAX);
        assert!(
            total <= 4096,
            "{k}^{c} = {total} assignments; use fewer classes or coarser chiplets"
        );
        let mut out = Vec::with_capacity(total as usize);
        let mut assign = vec![0u8; c];
        loop {
            out.push(
                HeteroSpec::new(self.classes.clone(), assign.clone(), &self.fabric)
                    .expect("enumerated assignments are valid"),
            );
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == c {
                    return out;
                }
                assign[i] += 1;
                if (assign[i] as usize) < k {
                    break;
                }
                assign[i] = 0;
                i += 1;
            }
        }
    }
}

/// One explored heterogeneous candidate.
#[derive(Debug, Clone)]
pub struct HeteroDseRecord {
    /// The class assignment.
    pub spec: HeteroSpec,
    /// Peak TOPS of the assignment.
    pub tops: f64,
    /// Monetary cost ($).
    pub mc: f64,
    /// Geometric-mean energy over the DNNs (J).
    pub energy: f64,
    /// Geometric-mean delay over the DNNs (s).
    pub delay: f64,
    /// Objective score.
    pub score: f64,
    /// Congestion-aware re-score from the fidelity re-rank stage
    /// (`None` for assignments the policy did not re-score).
    pub fluid: Option<FluidRescore>,
    /// Rung-0 bound diagnostics (`None` when the DSE ran with
    /// [`crate::fidelity::BoundMode::Off`]).
    pub bound: Option<RecordBound>,
    /// Whether this assignment was pruned before SA (see
    /// [`crate::dse::DseRecord::pruned`]): `energy`/`delay`/`score`
    /// hold the bound values.
    pub pruned: bool,
}

/// Result of a heterogeneous DSE.
#[derive(Debug, Clone)]
pub struct HeteroDseResult {
    /// All evaluated assignments.
    pub records: Vec<HeteroDseRecord>,
    /// Index of the best record (after any fidelity re-rank the options
    /// requested).
    pub best: usize,
    /// Fidelity-ladder outcome (see [`crate::fidelity::DseReport`]).
    pub report: DseReport,
}

impl HeteroDseResult {
    /// The winning record.
    pub fn best_record(&self) -> &HeteroDseRecord {
        &self.records[self.best]
    }

    /// Re-ranks under a different objective without re-mapping.
    ///
    /// Scores from the *analytic* metrics only (see
    /// [`crate::dse::DseResult::best_under`] for why fluid re-scores
    /// cannot be compared across the whole record list).
    pub fn best_under(&self, obj: Objective) -> &HeteroDseRecord {
        self.records
            .iter()
            .min_by(|a, b| {
                let sa = obj.score(a.mc, a.energy, a.delay);
                let sb = obj.score(b.mc, b.energy, b.delay);
                sa.total_cmp(&sb)
            })
            .expect("non-empty DSE")
    }
}

/// Evaluates one class assignment on all DNNs.
pub fn evaluate_hetero_candidate(
    fabric: &ArchConfig,
    spec: &HeteroSpec,
    dnns: &[Dnn],
    cost: &CostModel,
    opts: &DseOptions,
) -> HeteroDseRecord {
    let ev = Evaluator::hetero(fabric, spec);
    let engine = MappingEngine::new(&ev);
    let mut log_e = 0.0;
    let mut log_d = 0.0;
    for dnn in dnns {
        let m = engine.map_hetero(dnn, opts.batch, &opts.mapping, spec);
        log_e += m.report.energy.total().ln();
        log_d += m.report.delay_s.ln();
    }
    let n = dnns.len().max(1) as f64;
    let energy = (log_e / n).exp();
    let delay = (log_d / n).exp();
    let mc = cost.evaluate_hetero(fabric, spec).total();
    HeteroDseRecord {
        spec: spec.clone(),
        tops: spec.tops(fabric),
        mc,
        energy,
        delay,
        score: opts.objective.score(mc, energy, delay),
        fluid: None,
        bound: None,
        pruned: false,
    }
}

/// Rung-0 bound of one class assignment: the closed-form lower bound of
/// [`gemini_sim::bound`] on the heterogeneity-aware stripe mapping (see
/// [`crate::dse::bound_candidate`] — flow selectors and batch units are
/// SA-invariant, so this bounds every reachable mapping).
fn bound_hetero_candidate(
    fabric: &ArchConfig,
    spec: &HeteroSpec,
    dnns: &[Dnn],
    cost: &CostModel,
    opts: &DseOptions,
) -> CandidateBound {
    let mc = cost.evaluate_hetero(fabric, spec).total();
    let ev = Evaluator::hetero(fabric, spec);
    let mut log_e = 0.0;
    let mut log_d = 0.0;
    for dnn in dnns {
        let partition = partition_graph(dnn, fabric, opts.batch, &opts.mapping.partition);
        let lms: Vec<crate::encoding::Lms> = partition
            .groups
            .iter()
            .map(|g| crate::hetero_map::hetero_stripe_lms(dnn, fabric, g, spec))
            .collect();
        let gms = parse_all(dnn, &partition, &lms);
        let b = gemini_sim::bound::dnn_bound(&ev, dnn, &gms, opts.batch);
        log_e += b.energy_j.ln();
        log_d += b.delay_s.ln();
    }
    let n = dnns.len().max(1) as f64;
    let energy = (log_e / n).exp();
    let delay = (log_d / n).exp();
    CandidateBound {
        score: opts.objective.score(mc, energy, delay),
        energy,
        delay,
    }
}

/// The stand-in record of a pruned assignment (exact cost, bound
/// metrics, no mapping data) — see [`crate::dse::DseRecord::pruned`].
fn pruned_hetero_record(
    fabric: &ArchConfig,
    spec: &HeteroSpec,
    cost: &CostModel,
    cb: &CandidateBound,
) -> HeteroDseRecord {
    HeteroDseRecord {
        spec: spec.clone(),
        tops: spec.tops(fabric),
        mc: cost.evaluate_hetero(fabric, spec).total(),
        energy: cb.energy,
        delay: cb.delay,
        score: cb.score,
        fluid: None,
        bound: None,
        pruned: true,
    }
}

/// Runs the heterogeneous DSE over all class assignments.
///
/// Assignments fan out over `opts.threads` scoped workers, mirroring
/// the homogeneous [`crate::dse::run_dse_over`]; per-group SA chains
/// inside each mapping run are pinned to one thread when the candidate
/// level is already parallel (auto setting only), so the machine is
/// not oversubscribed. Results are identical at any thread count. The
/// fidelity re-rank stage requested by [`DseOptions::fidelity`] runs
/// here too, with the heterogeneity-aware evaluator and mapper.
///
/// # Panics
///
/// Panics if the grid is empty (no classes).
pub fn run_hetero_dse(dnns: &[Dnn], spec: &HeteroDseSpec, opts: &DseOptions) -> HeteroDseResult {
    let candidates = spec.candidates();
    assert!(!candidates.is_empty(), "no class assignments to explore");
    let cost = CostModel::default();

    let n = candidates.len();
    let workers = opts.threads.clamp(1, n);
    let mut opts_inner = opts.clone();
    if workers > 1 && opts_inner.mapping.sa.threads == 0 {
        opts_inner.mapping.sa.threads = 1;
    }

    // Rung 0 mirrors the homogeneous DSE (see
    // [`crate::dse::run_dse_over`] for the soundness argument): bound
    // everything, evaluate the best-bounded seeds, prune only
    // assignments whose bound strictly exceeds the achieved threshold.
    let mut bound_plan: Option<BoundPlan> = None;
    let mut records: Vec<HeteroDseRecord> = if opts.bound.active() {
        let bounds: Vec<CandidateBound> = crate::pool::parallel_map_indexed(workers, n, |i| {
            bound_hetero_candidate(&spec.fabric, &candidates[i], dnns, &cost, opts)
        });
        let n_seeds = if opts.objective.monotone() {
            seed_count(&opts.fidelity, n)
        } else {
            n
        };
        let seed = bound_seed_mask(&bounds, n_seeds);
        let seed_idx: Vec<usize> = (0..n).filter(|&i| seed[i]).collect();
        let seed_records: Vec<HeteroDseRecord> = crate::pool::parallel_map_indexed(
            workers.min(seed_idx.len()).max(1),
            seed_idx.len(),
            |j| {
                evaluate_hetero_candidate(
                    &spec.fabric,
                    &candidates[seed_idx[j]],
                    dnns,
                    &cost,
                    &opts_inner,
                )
            },
        );
        let mut achieved: Vec<f64> = seed_records.iter().map(|r| r.score).collect();
        achieved.sort_by(f64::total_cmp);
        let need = survivors_needed(&opts.fidelity).min(achieved.len());
        let threshold = if need == 0 {
            f64::INFINITY
        } else {
            achieved[need - 1]
        };
        let pruned: Vec<bool> = (0..n)
            .map(|i| !seed[i] && bounds[i].score > threshold)
            .collect();
        let rest: Vec<usize> = (0..n)
            .filter(|&i| !(seed[i] || opts.bound.prunes() && pruned[i]))
            .collect();
        let rest_records: Vec<HeteroDseRecord> = if rest.is_empty() {
            Vec::new()
        } else {
            crate::pool::parallel_map_indexed(workers.min(rest.len()), rest.len(), |j| {
                evaluate_hetero_candidate(
                    &spec.fabric,
                    &candidates[rest[j]],
                    dnns,
                    &cost,
                    &opts_inner,
                )
            })
        };
        let mut slots: Vec<Option<HeteroDseRecord>> = (0..n).map(|_| None).collect();
        for (i, r) in seed_idx.into_iter().zip(seed_records) {
            slots[i] = Some(r);
        }
        for (i, r) in rest.into_iter().zip(rest_records) {
            slots[i] = Some(r);
        }
        let recs: Vec<HeteroDseRecord> = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let mut r = s.unwrap_or_else(|| {
                    pruned_hetero_record(&spec.fabric, &candidates[i], &cost, &bounds[i])
                });
                let gap = if r.pruned || bounds[i].score <= 0.0 {
                    None
                } else {
                    Some(r.score / bounds[i].score)
                };
                r.bound = Some(RecordBound {
                    score: bounds[i].score,
                    energy: bounds[i].energy,
                    delay: bounds[i].delay,
                    gap,
                });
                r
            })
            .collect();
        bound_plan = Some(BoundPlan {
            bounds,
            seed,
            pruned,
            threshold,
        });
        recs
    } else {
        crate::pool::parallel_map_indexed(workers, n, |i| {
            evaluate_hetero_candidate(&spec.fabric, &candidates[i], dnns, &cost, &opts_inner)
        })
    };

    let scores: Vec<f64> = records
        .iter()
        .map(|r| if r.pruned { f64::INFINITY } else { r.score })
        .collect();
    let analytic_best = scores
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
        .expect("non-empty");

    let mcs_energies: Vec<(f64, f64)> = records.iter().map(|r| (r.mc, r.energy)).collect();
    let (best, report, rescores) = crate::fidelity::run_fidelity_stage(
        &opts.fidelity,
        opts.objective,
        &scores,
        &mcs_energies,
        analytic_best,
        opts.threads.max(1),
        dnns,
        |i| {
            let assignment = &candidates[i];
            let ev = Evaluator::hetero(&spec.fabric, assignment);
            let engine = MappingEngine::new(&ev);
            let mapped = dnns
                .iter()
                .map(|d| engine.map_hetero(d, opts.batch, &opts_inner.mapping, assignment))
                .collect();
            (ev, mapped)
        },
    );
    for (i, fr) in rescores {
        records[i].fluid = Some(fr);
    }
    let mut report = report;
    if let Some(plan) = &bound_plan {
        report.bound = Some(plan.stats(records[best].score, best));
    }
    HeteroDseResult {
        records,
        best,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MappingOptions;
    use crate::sa::SaOptions;
    use gemini_model::zoo;

    fn two_chiplet_fabric() -> ArchConfig {
        ArchConfig::builder()
            .cores(4, 4)
            .cuts(1, 2)
            .build()
            .unwrap()
    }

    fn big_little_classes() -> Vec<CoreClass> {
        vec![
            CoreClass {
                macs: 2048,
                glb_bytes: 2 << 20,
            },
            CoreClass {
                macs: 512,
                glb_bytes: 1 << 20,
            },
        ]
    }

    #[test]
    fn candidate_enumeration_is_exhaustive() {
        let spec = HeteroDseSpec {
            fabric: two_chiplet_fabric(),
            classes: big_little_classes(),
        };
        let cands = spec.candidates();
        assert_eq!(cands.len(), 4, "2 classes ^ 2 chiplets");
        let mut assigns: Vec<Vec<u8>> = cands
            .iter()
            .map(|c| c.class_of_chiplet().to_vec())
            .collect();
        assigns.sort();
        assert_eq!(
            assigns,
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]
        );
    }

    #[test]
    #[should_panic(expected = "assignments")]
    fn oversized_grids_rejected() {
        let fabric = ArchConfig::builder()
            .cores(8, 8)
            .cuts(8, 8)
            .build()
            .unwrap();
        let spec = HeteroDseSpec {
            fabric,
            classes: vec![
                CoreClass {
                    macs: 512,
                    glb_bytes: 1 << 20,
                },
                CoreClass {
                    macs: 1024,
                    glb_bytes: 1 << 20,
                },
            ],
        };
        let _ = spec.candidates();
    }

    #[test]
    fn hetero_rerank_rescored_topk() {
        let spec = HeteroDseSpec {
            fabric: two_chiplet_fabric(),
            classes: big_little_classes(),
        };
        let opts = DseOptions {
            batch: 2,
            mapping: MappingOptions {
                sa: SaOptions {
                    iters: 30,
                    seed: 4,
                    ..Default::default()
                },
                ..Default::default()
            },
            fidelity: crate::fidelity::FidelityPolicy::rerank(2),
            ..Default::default()
        };
        let dnns = vec![zoo::two_conv_example()];
        let res = run_hetero_dse(&dnns, &spec, &opts);
        assert_eq!(res.records.iter().filter(|r| r.fluid.is_some()).count(), 2);
        assert_eq!(res.report.reranked.len(), 2);
        // The winner is one of the re-scored assignments and minimizes
        // the congestion-corrected score.
        let best = res.records[res.best].fluid.as_ref().expect("re-scored");
        for r in res.records.iter().filter_map(|r| r.fluid.as_ref()) {
            assert!(best.score <= r.score * (1.0 + 1e-12));
        }
    }

    #[test]
    fn mini_hetero_dse_finds_a_best() {
        let spec = HeteroDseSpec {
            fabric: two_chiplet_fabric(),
            classes: big_little_classes(),
        };
        let opts = DseOptions {
            batch: 2,
            mapping: MappingOptions {
                sa: SaOptions {
                    iters: 30,
                    seed: 4,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let dnns = vec![zoo::two_conv_example()];
        let res = run_hetero_dse(&dnns, &spec, &opts);
        assert_eq!(res.records.len(), 4);
        let best = res.best_record();
        assert!(best.score > 0.0 && best.mc > 0.0 && best.tops > 0.0);
        // Re-rank under delay only: the all-big assignment must win on
        // raw speed.
        let fastest = res.best_under(Objective::d_only());
        assert!(
            fastest.spec.class_of_chiplet().iter().all(|&c| c == 0),
            "all-big must be the fastest assignment, got {:?}",
            fastest.spec.class_of_chiplet()
        );
        // And the all-little assignment must be the cheapest.
        let cheapest = res
            .records
            .iter()
            .min_by(|a, b| a.mc.partial_cmp(&b.mc).unwrap())
            .unwrap();
        assert!(cheapest.spec.class_of_chiplet().iter().all(|&c| c == 1));
    }
}
