//! Optimization-space size calculation (Sec. IV-B of the paper).
//!
//! The paper conservatively lower-bounds the LP-SPM space for mapping `N`
//! layers onto `M` cores with `D` DRAMs at
//!
//! ```text
//! M! * sum_{i=0}^{N-1} C(N, i) * C(M-N-1, N-i-1) * 4^{N-i}
//! ```
//!
//! and upper-bounds the Tangram heuristic's space at `N * part(M)` where
//! `part` is the integer-partition function. Sizes are astronomically
//! large, so everything here works in log2 space; the SA controller also
//! uses these values as group-selection weights.

/// log2(n!) via direct summation (exact enough for n <= a few thousand).
pub fn log2_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).log2()).sum()
}

/// log2 of the binomial coefficient C(n, k); `None` when the coefficient
/// is zero (k > n).
pub fn log2_binomial(n: u64, k: u64) -> Option<f64> {
    if k > n {
        return None;
    }
    Some(log2_factorial(n) - log2_factorial(k) - log2_factorial(n - k))
}

/// log2 of a sum of terms given in log2 space (log-sum-exp in base 2).
fn log2_sum(terms: &[f64]) -> f64 {
    let max = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = terms.iter().map(|t| (t - max).exp2()).sum();
    max + sum.log2()
}

/// log2 of the paper's lower bound on the Gemini LP-SPM space for `n`
/// layers on `m` cores.
///
/// Returns `f64::NEG_INFINITY` when the bound degenerates (e.g. `m <= n`:
/// fewer cores than layers leaves no room for the counted schemes).
pub fn gemini_space_log2(m: u64, n: u64) -> f64 {
    if n == 0 || m == 0 {
        return f64::NEG_INFINITY;
    }
    let mut terms = Vec::with_capacity(n as usize);
    for i in 0..n {
        let a = match log2_binomial(n, i) {
            Some(v) => v,
            None => continue,
        };
        let b = if m > n {
            match log2_binomial(m - n - 1, n - i - 1) {
                Some(v) => v,
                None => continue,
            }
        } else {
            continue;
        };
        let c = (n - i) as f64 * 2.0; // log2(4^{n-i})
        terms.push(a + b + c);
    }
    if terms.is_empty() {
        return f64::NEG_INFINITY;
    }
    log2_factorial(m) + log2_sum(&terms)
}

/// The integer-partition function `part(m)` (number of multisets of
/// positive integers summing to `m`), computed by the classic DP.
/// Saturates at `u64::MAX` (first exceeds u64 near m = 416).
pub fn partition_count(m: u64) -> u64 {
    let m = m as usize;
    let mut p = vec![0u64; m + 1];
    p[0] = 1;
    for part in 1..=m {
        for total in part..=m {
            p[total] = p[total].saturating_add(p[total - part]);
        }
    }
    p[m]
}

/// log2 of the paper's upper bound on the Tangram heuristic space:
/// `N * part(M)`.
pub fn tangram_space_log2(m: u64, n: u64) -> f64 {
    if n == 0 {
        return f64::NEG_INFINITY;
    }
    (n as f64).log2() + (partition_count(m) as f64).log2()
}

/// Group-selection weight for the SA controller: proportional to the
/// log-space-size of the group (groups with larger optimization spaces
/// are picked more often, per Sec. V-B1), floored at 1 so degenerate
/// groups remain reachable.
pub fn group_weight(m_cores: u64, n_layers: u64) -> f64 {
    gemini_space_log2(m_cores, n_layers).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_logs() {
        assert_eq!(log2_factorial(0), 0.0);
        assert_eq!(log2_factorial(1), 0.0);
        assert!((log2_factorial(4) - (24f64).log2()).abs() < 1e-12);
        assert!((log2_factorial(10) - (3628800f64).log2()).abs() < 1e-9);
    }

    #[test]
    fn binomials() {
        assert_eq!(log2_binomial(5, 6), None);
        assert!((log2_binomial(5, 2).unwrap() - (10f64).log2()).abs() < 1e-12);
        assert!((log2_binomial(10, 0).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn partition_numbers_match_oeis() {
        // OEIS A000041.
        let expected = [1u64, 1, 2, 3, 5, 7, 11, 15, 22, 30, 42];
        for (m, &e) in expected.iter().enumerate() {
            assert_eq!(partition_count(m as u64), e, "part({m})");
        }
        assert_eq!(partition_count(36), 17977);
        assert_eq!(partition_count(100), 190569292);
    }

    #[test]
    fn gemini_space_dwarfs_tangram() {
        // The paper's headline claim about the space sizes: for any
        // realistic (M, N) the Gemini space is astronomically larger.
        for &(m, n) in &[(36u64, 4u64), (36, 8), (64, 10), (144, 12)] {
            let g = gemini_space_log2(m, n);
            let t = tangram_space_log2(m, n);
            assert!(
                g > t + 30.0,
                "M={m} N={n}: gemini 2^{g:.1} should dwarf tangram 2^{t:.1}"
            );
        }
    }

    #[test]
    fn space_grows_with_cores_and_layers() {
        assert!(gemini_space_log2(64, 6) > gemini_space_log2(36, 6));
        assert!(gemini_space_log2(36, 8) > gemini_space_log2(36, 4));
    }

    #[test]
    fn degenerate_spaces() {
        assert_eq!(gemini_space_log2(4, 0), f64::NEG_INFINITY);
        assert_eq!(gemini_space_log2(0, 3), f64::NEG_INFINITY);
        // More layers than cores: the bound's combinatorics vanish.
        assert_eq!(gemini_space_log2(3, 8), f64::NEG_INFINITY);
    }

    #[test]
    fn hand_check_small_case() {
        // M=4, N=1: sum has a single term i=0:
        // C(1,0) * C(2, 0) * 4 = 4; total = 4! * 4 = 96.
        let got = gemini_space_log2(4, 1);
        assert!((got - (96f64).log2()).abs() < 1e-9, "got 2^{got}");
    }

    #[test]
    fn group_weight_floored() {
        assert_eq!(group_weight(3, 8), 1.0);
        assert!(group_weight(36, 8) > 1.0);
    }
}
