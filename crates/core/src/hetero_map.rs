//! LP mapping on heterogeneous chiplets (Sec. V-D of the paper).
//!
//! The paper's future-work section asks how to schedule LP mappings when
//! chiplets differ in compute substance. Two pieces answer it here:
//!
//! 1. **Throughput-weighted stripe initialization**
//!    ([`hetero_stripe_lms`]): the plain stripe heuristic allocates
//!    *core counts* proportional to layer FLOPs, which over-serves
//!    layers that land on big-core chiplets and starves those on little
//!    cores. The weighted variant allocates *throughput* instead: walk
//!    the snake order accumulating each core's MAC weight and cut layer
//!    boundaries at cumulative-throughput targets.
//! 2. **SA refinement**: the annealer of Sec. V-B1 needs no changes —
//!    its cost comes from the heterogeneity-aware evaluator
//!    ([`gemini_sim::Evaluator::hetero`]), so OP2/OP3/OP4 moves that
//!    trade big cores against little ones are accepted exactly when
//!    they help. [`MappingEngine::map`](crate::engine::MappingEngine::map)
//!    on a hetero evaluator therefore
//!    already "schedules LP mapping on heterogeneous chiplets"; this
//!    module only improves its starting point and exposes convenience
//!    plumbing. The refinement inherits the parallel multi-chain SA
//!    engine unchanged: every layer group anneals in its own chain
//!    (see [`crate::sa::SaOptions::threads`]), and the memoized
//!    evaluation cache keys on the parsed mapping, so heterogeneous
//!    and homogeneous runs cache equally well.
//!
//! The `hetero_explore` bench quantifies both effects.

use gemini_arch::{ArchConfig, CoreId, HeteroSpec};
use gemini_model::Dnn;

use crate::encoding::{CoreGroup, GroupSpec, Lms, Ms};
use crate::factor::{largest_factorable, stripe_part_capacity};
use crate::stripe::{default_fd, snake_order};

/// Allocates contiguous snake-order runs of cores to the group's member
/// layers so every layer receives approximately its FLOP-share of the
/// *weighted throughput* (`core_weights`, parallel to `order`).
///
/// Every layer gets at least one core; the allocations sum to
/// `order.len()` exactly.
///
/// # Panics
///
/// Panics if the group has more members than cores.
pub fn weighted_allocation(dnn: &Dnn, spec: &GroupSpec, core_weights: &[f64]) -> Vec<u32> {
    let n = spec.members.len();
    let n_cores = core_weights.len();
    assert!(n <= n_cores, "group of {n} layers exceeds {n_cores} cores");

    let layer_w: Vec<f64> = spec
        .members
        .iter()
        .map(|&id| {
            let l = dnn.layer(id);
            let macs = l.macs(spec.batch_unit) as f64;
            let vec_ops =
                l.ofmap.elems() as f64 * spec.batch_unit as f64 * l.vector_ops_per_out() as f64;
            (macs + vec_ops * 0.05).max(1.0)
        })
        .collect();
    let total_layer: f64 = layer_w.iter().sum();
    let total_cap: f64 = core_weights.iter().sum();

    let mut alloc = vec![0u32; n];
    let mut cum_target = 0.0;
    let mut cum_cap = 0.0;
    let mut cursor = 0usize;
    for i in 0..n {
        cum_target += layer_w[i] / total_layer * total_cap;
        if i + 1 == n {
            // Last layer takes everything left.
            alloc[i] = (n_cores - cursor) as u32;
            break;
        }
        let max_take = n_cores - cursor - (n - i - 1);
        let mut k = 0usize;
        while k < max_take && (k == 0 || cum_cap < cum_target) {
            cum_cap += core_weights[cursor + k];
            k += 1;
        }
        alloc[i] = k as u32;
        cursor += k;
    }
    debug_assert_eq!(alloc.iter().sum::<u32>() as usize, n_cores);
    alloc
}

/// Builds a throughput-weighted stripe [`Lms`] for a heterogeneous
/// chiplet assignment.
///
/// Differences from [`crate::stripe::stripe_lms`]:
///
/// * layer boundaries fall at cumulative *throughput* targets, so a run
///   of big cores serves the same FLOPs with fewer cores;
/// * the capacity-aware K-split uses the smallest GLB within each
///   layer's run (the binding constraint for weight residency).
pub fn hetero_stripe_lms(
    dnn: &Dnn,
    arch: &ArchConfig,
    spec: &GroupSpec,
    hetero: &HeteroSpec,
) -> Lms {
    let order = snake_order(arch);
    let weights: Vec<f64> = order
        .iter()
        .map(|&c| hetero.core_class(arch, c).macs as f64)
        .collect();
    let alloc = weighted_allocation(dnn, spec, &weights);

    let mut cursor = 0usize;
    let mut schemes = Vec::with_capacity(spec.members.len());
    for (i, &id) in spec.members.iter().enumerate() {
        let shape = dnn.layer(id).ofmap;
        let usable = largest_factorable(alloc[i], shape, spec.batch_unit);
        let run: Vec<CoreId> = order[cursor..cursor + usable as usize].to_vec();
        let min_glb = run
            .iter()
            .map(|&c| hetero.core_class(arch, c).glb_bytes)
            .min()
            .expect("run is non-empty");
        let part = stripe_part_capacity(
            usable,
            shape,
            spec.batch_unit,
            dnn.layer(id).weight_bytes(),
            min_glb,
        )
        .expect("largest_factorable guarantees a valid Part");
        cursor += alloc[i] as usize;
        schemes.push(Ms {
            part,
            cg: CoreGroup(run),
            fd: default_fd(dnn, spec, id),
        });
    }
    Lms { schemes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_arch::CoreClass;
    use gemini_model::{zoo, LayerId};

    fn big_little_arch() -> (ArchConfig, HeteroSpec) {
        let arch = ArchConfig::builder()
            .cores(6, 6)
            .cuts(2, 1)
            .build()
            .unwrap();
        let spec = HeteroSpec::new(
            vec![
                CoreClass {
                    macs: 2048,
                    glb_bytes: 2 << 20,
                },
                CoreClass {
                    macs: 512,
                    glb_bytes: 1 << 20,
                },
            ],
            vec![0, 1],
            &arch,
        )
        .unwrap();
        (arch, spec)
    }

    #[test]
    fn weighted_allocation_sums_and_floors() {
        let dnn = zoo::two_conv_example();
        let spec = GroupSpec {
            members: vec![LayerId(1), LayerId(2)],
            batch_unit: 2,
        };
        let w = vec![1.0; 36];
        let alloc = weighted_allocation(&dnn, &spec, &w);
        assert_eq!(alloc.iter().sum::<u32>(), 36);
        assert!(alloc.iter().all(|&a| a >= 1));
    }

    #[test]
    fn uniform_weights_match_proportional_shape() {
        // With equal core weights the boundaries must land close to the
        // plain proportional allocation (within rounding).
        let dnn = zoo::two_conv_example();
        let spec = GroupSpec {
            members: vec![LayerId(1), LayerId(2)],
            batch_unit: 2,
        };
        let weighted = weighted_allocation(&dnn, &spec, &vec![1.0; 36]);
        let plain = crate::stripe::proportional_allocation(&dnn, &spec, 36);
        for (a, b) in weighted.iter().zip(&plain) {
            assert!(
                a.abs_diff(*b) <= 1,
                "weighted {weighted:?} vs plain {plain:?}"
            );
        }
    }

    #[test]
    fn big_core_run_takes_fewer_cores() {
        // Two equal-FLOP layers on a big-north/little-south fabric: the
        // row-snake order covers all big cores first, so layer 1 should
        // need fewer cores than layer 2 for the same throughput share.
        // (A west/east cut would interleave classes every half-row and
        // leave the boundary near the homogeneous position.)
        let arch = ArchConfig::builder()
            .cores(6, 6)
            .cuts(1, 2)
            .build()
            .unwrap();
        let hs = HeteroSpec::new(
            vec![
                CoreClass {
                    macs: 2048,
                    glb_bytes: 2 << 20,
                },
                CoreClass {
                    macs: 512,
                    glb_bytes: 1 << 20,
                },
            ],
            vec![0, 1],
            &arch,
        )
        .unwrap();
        let dnn = zoo::two_conv_example();
        let spec = GroupSpec {
            members: vec![LayerId(1), LayerId(2)],
            batch_unit: 2,
        };
        let order = snake_order(&arch);
        let weights: Vec<f64> = order
            .iter()
            .map(|&c| hs.core_class(&arch, c).macs as f64)
            .collect();
        let alloc = weighted_allocation(&dnn, &spec, &weights);
        assert!(
            alloc[0] < alloc[1],
            "big-core layer should take fewer cores: {alloc:?}"
        );
    }

    #[test]
    fn hetero_stripe_validates_and_parses() {
        let (arch, hs) = big_little_arch();
        let dnn = zoo::two_conv_example();
        let spec = GroupSpec {
            members: vec![LayerId(1), LayerId(2)],
            batch_unit: 2,
        };
        let lms = hetero_stripe_lms(&dnn, &arch, &spec, &hs);
        lms.validate(&dnn, &arch, &spec).unwrap();
        let gm = lms.parse(&dnn, &spec, &|_| gemini_sim::DramSel::Interleaved);
        gm.validate(&dnn).unwrap();
    }

    #[test]
    fn hetero_stripe_on_uniform_spec_equals_plain_stripe_counts() {
        let arch = gemini_arch::presets::g_arch_72();
        let hs = HeteroSpec::uniform(&arch);
        let dnn = zoo::two_conv_example();
        let spec = GroupSpec {
            members: vec![LayerId(1), LayerId(2)],
            batch_unit: 2,
        };
        let h = hetero_stripe_lms(&dnn, &arch, &spec, &hs);
        let p = crate::stripe::stripe_lms(&dnn, &arch, &spec);
        for (a, b) in h.schemes.iter().zip(&p.schemes) {
            assert!(
                (a.cg.len() as i64 - b.cg.len() as i64).abs() <= 1,
                "uniform hetero stripe should mirror the plain stripe"
            );
        }
    }

    #[test]
    fn deep_group_allocation_is_exact() {
        let (arch, hs) = big_little_arch();
        let dnn = zoo::resnet50();
        let members: Vec<LayerId> = dnn.compute_ids().take(12).collect();
        let spec = GroupSpec {
            members,
            batch_unit: 1,
        };
        let order = snake_order(&arch);
        let weights: Vec<f64> = order
            .iter()
            .map(|&c| hs.core_class(&arch, c).macs as f64)
            .collect();
        let alloc = weighted_allocation(&dnn, &spec, &weights);
        assert_eq!(alloc.iter().sum::<u32>(), 36);
        assert!(alloc.iter().all(|&a| a >= 1));
        let lms = hetero_stripe_lms(&dnn, &arch, &spec, &hs);
        lms.validate(&dnn, &arch, &spec).unwrap();
    }
}
