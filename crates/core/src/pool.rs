//! Scoped worker-pool helper shared by the SA engine and the DSE
//! drivers.
//!
//! One implementation of the "atomic work counter + slot vector +
//! `std::thread::scope`" pattern, so panic handling and result ordering
//! stay in sync across every parallel call site.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Evaluates `f(0..n)` on up to `workers` scoped threads and returns
/// the results in index order.
///
/// `workers` is clamped to `1..=n`; with one worker the closure runs
/// inline on the caller's thread (no spawn overhead). Work is handed
/// out through an atomic counter, so long items do not convoy behind a
/// static partition. A panic inside `f` propagates to the caller when
/// the scope joins.
pub(crate) fn parallel_map_indexed<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if workers.clamp(1, n) == 1 {
        return (0..n).map(f).collect();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                slots
                    .lock()
                    .expect("a worker panicked holding the slot lock")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("slot lock poisoned")
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for workers in [1, 2, 3, 17] {
            let out = parallel_map_indexed(workers, 10, |i| i * i);
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_oversized_worker_counts() {
        assert_eq!(parallel_map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_indexed(0, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(parallel_map_indexed(100, 2, |i| i), vec![0, 1]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let _ = parallel_map_indexed(8, 64, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }
}
