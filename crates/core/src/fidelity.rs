//! The NoC fidelity ladder as a first-class DSE stage.
//!
//! The co-exploration loop trusts the analytic network model for
//! millions of SA evaluations — it has to, for speed — but architecture
//! conclusions drawn from it are only as good as its congestion
//! fidelity. This module promotes the reference simulators of
//! `gemini-noc` from an offline audit (`gemini_sim::check_group`, the
//! `fidelity_ladder` example) to a policy the DSE drivers consult:
//!
//! 1. **Analytic** (rung 0): the SA inner loop and candidate ranking
//!    use the cheap per-link model, exactly as before.
//! 2. **Re-rank** (rung 1): the top-K candidates that survive the
//!    analytic sweep are re-scored with the max-min fluid flow
//!    simulator. Each group's stage traffic is replayed; whenever the
//!    fluid completion exceeds the group's priced stage *envelope* —
//!    max of compute, analytic network and DRAM time, which already
//!    absorbs congestion on non-network-bound groups — the difference
//!    is added to that group's stage time
//!    ([`crate::engine::MappedDnn::congestion_corrected_delay`]) and
//!    the objective is re-evaluated with the corrected delay. The
//!    fan-out runs on the same scoped worker pool as the candidate
//!    sweep and is bit-identical at any thread count.
//! 3. **Validate** (rung 2): the final winner is additionally replayed
//!    through the flit-granular packet simulator, the per-group
//!    analytic-vs-reference discrepancy is reported, and a calibrated
//!    congestion-surcharge weight is derived
//!    ([`gemini_sim::calibrate_congestion_weight`]) for feeding back
//!    into [`gemini_sim::EvalOptions`] so the cheap model stays honest
//!    on the workloads actually explored.
//!
//! Both DSE drivers ([`crate::dse::run_dse_over`] and
//! [`crate::hetero_dse::run_hetero_dse`]) honour the policy via
//! [`crate::dse::DseOptions::fidelity`] and attach the resulting
//! [`DseReport`] to their results. Monolithic candidates
//! (XCut = YCut = 1) have no D2D links; every stage here handles the
//! zero-D2D case.

use serde::{Deserialize, Serialize};

use gemini_model::Dnn;
use gemini_noc::flowsim::FlowSimWorkspace;
use gemini_noc::packetsim::{PacketSimConfig, PacketSimWorkspace};
use gemini_sim::{
    calibrate_congestion_weight, check_group_fluid, check_group_packet, EvalOptions, Evaluator,
    GroupMapping,
};

use crate::dse::Objective;
use crate::engine::MappedDnn;

/// Configuration of the fluid re-rank replays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidConfig {
    /// Volume cap per group replay in bytes: larger stages are scaled
    /// down proportionally before simulation (all models are
    /// volume-linear, so reported times are scaled back up).
    pub cap_bytes: f64,
}

impl Default for FluidConfig {
    fn default() -> Self {
        Self { cap_bytes: 512e3 }
    }
}

/// How much of the NoC fidelity ladder the DSE consults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum FidelityPolicy {
    /// Rung 0: trust the analytic evaluator everywhere (the historic
    /// behavior — congestion-blind beyond the surcharge).
    #[default]
    Analytic,
    /// Rung 1: re-score the top-`k` analytic survivors with the
    /// max-min fluid flow simulator and re-rank them under the
    /// congestion-corrected delay.
    RerankTopK {
        /// How many analytic survivors to re-score.
        k: usize,
        /// Fluid replay configuration.
        fluid: FluidConfig,
    },
    /// Rung 2: rung 1, plus flit-granular packet validation of the
    /// final winner (fills [`GroupDiscrepancy::packet_s`] and derives
    /// [`DseReport::suggested_congestion_weight`] from the packet
    /// reference — the only rung that calibrates).
    ValidateWinner {
        /// How many analytic survivors to re-score.
        k: usize,
        /// Fluid replay configuration.
        fluid: FluidConfig,
        /// Packet-simulator configuration for the winner replay.
        packet: PacketSimConfig,
    },
}

impl FidelityPolicy {
    /// Rung-1 policy with default fluid configuration.
    pub fn rerank(k: usize) -> Self {
        Self::RerankTopK {
            k,
            fluid: FluidConfig::default(),
        }
    }

    /// Rung-2 policy with default fluid and packet configurations.
    pub fn validate(k: usize) -> Self {
        Self::ValidateWinner {
            k,
            fluid: FluidConfig::default(),
            packet: PacketSimConfig::default(),
        }
    }

    /// Re-rank parameters, `None` under [`FidelityPolicy::Analytic`].
    pub fn rerank_params(&self) -> Option<(usize, FluidConfig)> {
        match self {
            Self::Analytic => None,
            Self::RerankTopK { k, fluid } | Self::ValidateWinner { k, fluid, .. } => {
                Some((*k, *fluid))
            }
        }
    }

    /// Packet configuration for winner validation, `None` below rung 2.
    pub fn packet_cfg(&self) -> Option<&PacketSimConfig> {
        match self {
            Self::ValidateWinner { packet, .. } => Some(packet),
            _ => None,
        }
    }
}

/// Rung-0 analytic-bound pre-filter mode of the DSE drivers
/// ([`crate::dse::DseOptions::bound`]).
///
/// The bound pass computes, for every candidate, the closed-form lower
/// bound of [`gemini_sim::bound`] on the structural stripe mapping
/// (valid for the candidate's whole SA space), fully evaluates the
/// best-bounded seed candidates to establish an *achieved* incumbent
/// threshold, and flags every remaining candidate whose bound already
/// exceeds that threshold as provably unable to win.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundMode {
    /// No bound pass (the historic behavior).
    #[default]
    Off,
    /// Run the bound pass and report gap diagnostics and the prune
    /// counter, but still evaluate every candidate. The [`DseReport`]
    /// (including [`BoundStats`]) is byte-identical to
    /// [`BoundMode::Prune`]; only the per-record metrics of flagged
    /// candidates differ (achieved here, bound values there).
    Report,
    /// Additionally skip full SA on flagged candidates. Never changes
    /// the winner or the fidelity top-K: a pruned candidate's bound —
    /// hence its achieved score — strictly exceeds the achieved scores
    /// of at least as many evaluated seeds as the ladder consumes
    /// (the re-rank `k`, or just the winner under `analytic`).
    Prune,
}

impl BoundMode {
    /// Whether the bound pass runs at all.
    pub fn active(&self) -> bool {
        !matches!(self, BoundMode::Off)
    }

    /// Whether flagged candidates actually skip evaluation.
    pub fn prunes(&self) -> bool {
        matches!(self, BoundMode::Prune)
    }
}

/// Statistics of the rung-0 bound pre-filter, attached to the
/// [`DseReport`] whenever [`BoundMode::active`]. Identical between
/// [`BoundMode::Report`] and [`BoundMode::Prune`] by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundStats {
    /// Candidates bounded (the whole sweep).
    pub total: usize,
    /// Best-bounded candidates fully evaluated to establish the
    /// achieved incumbent threshold.
    pub seeds: usize,
    /// Candidates whose bound exceeded the threshold (skipped under
    /// [`BoundMode::Prune`]).
    pub pruned: usize,
    /// The achieved score a bound had to beat: the k-th best achieved
    /// seed score, where k is what the fidelity ladder consumes (the
    /// re-rank depth, or 1 under the plain analytic policy).
    pub threshold: f64,
    /// The winner's achieved/bound score ratio (a convergence
    /// diagnostic: close to 1 means the analytic model is tight).
    pub winner_gap: f64,
}

impl BoundStats {
    /// Percentage of candidates pruned before SA.
    pub fn prune_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.pruned as f64 / self.total as f64
        }
    }
}

/// Parses a `--fidelity` string into a policy and a rung-0 bound mode:
/// a base rung (`analytic` | `rerank` | `validate`, the latter two
/// re-scoring `rerank_k` survivors) with an optional suffix `+bounds`
/// (bound diagnostics, no skipping) or `+prune` (skip provably-losing
/// candidates). Returns `None` on anything else.
pub fn parse_policy(s: &str, rerank_k: usize) -> Option<(FidelityPolicy, BoundMode)> {
    let (base, bound) = match s.split_once('+') {
        Some((b, "bounds")) => (b, BoundMode::Report),
        Some((b, "prune")) => (b, BoundMode::Prune),
        Some(_) => return None,
        None => (s, BoundMode::Off),
    };
    let policy = match base {
        "analytic" => FidelityPolicy::Analytic,
        "rerank" => FidelityPolicy::rerank(rerank_k),
        "validate" => FidelityPolicy::validate(rerank_k),
        _ => return None,
    };
    Some((policy, bound))
}

/// One group's analytic-vs-reference discrepancy on the final winner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupDiscrepancy {
    /// Workload name.
    pub dnn: String,
    /// Group index within that workload's mapping.
    pub group: usize,
    /// Per-link bottleneck bound, seconds.
    pub bottleneck_s: f64,
    /// The evaluator's analytic network time (bottleneck + surcharge),
    /// seconds.
    pub analytic_s: f64,
    /// Mean per-link transfer time (the surcharge base), seconds.
    pub mean_link_s: f64,
    /// Max-min fluid completion, seconds.
    pub fluid_s: f64,
    /// Flit-granular packet completion, seconds (winner validation
    /// only; `None` under [`FidelityPolicy::RerankTopK`]).
    pub packet_s: Option<f64>,
    /// Whether the packet replay hit its cycle bound: a truncated
    /// `packet_s` under-reports congestion and is excluded from the
    /// calibration observations.
    pub packet_truncated: bool,
    /// Flows replayed.
    pub n_flows: usize,
}

impl GroupDiscrepancy {
    /// Fluid time over the analytic estimate (> 1 flags underpriced
    /// contention).
    pub fn fluid_vs_analytic(&self) -> f64 {
        if self.analytic_s > 0.0 {
            self.fluid_s / self.analytic_s
        } else {
            1.0
        }
    }

    /// The most detailed reference time available (packet when the
    /// winner was validated, fluid otherwise).
    pub fn reference_s(&self) -> f64 {
        self.packet_s.unwrap_or(self.fluid_s)
    }

    /// Reference time over the analytic estimate, with the same
    /// zero-traffic convention as [`Self::fluid_vs_analytic`].
    pub fn reference_vs_analytic(&self) -> f64 {
        if self.analytic_s > 0.0 {
            self.reference_s() / self.analytic_s
        } else {
            1.0
        }
    }
}

/// Fluid re-score of one candidate (stored on the record it re-scored).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluidRescore {
    /// Congestion-corrected geometric-mean delay over the DNNs (s).
    pub delay: f64,
    /// Objective re-scored with the corrected delay (energy and MC are
    /// unchanged by the network model).
    pub score: f64,
    /// Worst per-group fluid/analytic ratio observed on this candidate.
    pub worst_fluid_vs_analytic: f64,
}

/// One re-ranked candidate's before/after scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RerankEntry {
    /// Index into the result's record list.
    pub index: usize,
    /// Score under the analytic model.
    pub analytic_score: f64,
    /// Score under the congestion-corrected delay.
    pub fluid_score: f64,
}

/// The fidelity outcome of one DSE run: which rungs ran, how the
/// ranking moved, and the winner's per-group analytic-vs-reference
/// discrepancy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseReport {
    /// The policy that produced this report.
    pub policy: FidelityPolicy,
    /// Winner index under the analytic model alone.
    pub analytic_best: usize,
    /// Winner index after the fidelity stages (equals `analytic_best`
    /// under [`FidelityPolicy::Analytic`]).
    pub best: usize,
    /// Re-ranked candidates in analytic order (empty under
    /// [`FidelityPolicy::Analytic`]).
    pub reranked: Vec<RerankEntry>,
    /// Per-group discrepancies of the final winner (fluid always;
    /// packet filled under [`FidelityPolicy::ValidateWinner`]).
    pub winner_groups: Vec<GroupDiscrepancy>,
    /// Congestion-surcharge weight that would align the analytic price
    /// with the *packet* reference on the winner's groups. Only filled
    /// under [`FidelityPolicy::ValidateWinner`] (the fluid rung has no
    /// queueing, so a fluid-referenced fit would spuriously advise
    /// weight ~0), and `None` when no group constrains it (e.g. fully
    /// compute-bound mappings).
    pub suggested_congestion_weight: Option<f64>,
    /// Rung-0 bound pre-filter statistics (`None` when the DSE ran with
    /// [`BoundMode::Off`]). Filled by the DSE drivers after the
    /// fidelity stages; identical between [`BoundMode::Report`] and
    /// [`BoundMode::Prune`].
    pub bound: Option<BoundStats>,
}

impl DseReport {
    /// The trivial rung-0 report.
    pub fn analytic(best: usize) -> Self {
        Self {
            policy: FidelityPolicy::Analytic,
            analytic_best: best,
            best,
            reranked: Vec::new(),
            winner_groups: Vec::new(),
            suggested_congestion_weight: None,
            bound: None,
        }
    }

    /// Whether the congestion-aware re-rank overturned the analytic
    /// winner.
    pub fn winner_changed(&self) -> bool {
        self.best != self.analytic_best
    }

    /// Worst per-group fluid/analytic ratio on the winner (1.0 when no
    /// group was replayed).
    pub fn max_fluid_vs_analytic(&self) -> f64 {
        self.winner_groups
            .iter()
            .map(GroupDiscrepancy::fluid_vs_analytic)
            .fold(1.0, f64::max)
    }

    /// Applies the calibration feedback: `base` with the suggested
    /// congestion weight, or `base` unchanged when nothing constrains
    /// it. Build the next exploration's evaluators from the result to
    /// keep the cheap model honest.
    #[must_use]
    pub fn calibrated_eval_options(&self, base: EvalOptions) -> EvalOptions {
        match self.suggested_congestion_weight {
            Some(w) => base.with_congestion_weight(w),
            None => base,
        }
    }
}

/// Replays every group of one mapped DNN through the fluid simulator.
///
/// Returns the congestion-corrected end-to-end delay, the per-group
/// discrepancies and the parsed group mappings (so callers can replay
/// the packet rung without re-parsing). Shared by the DSE re-rank
/// stage and the per-cell fluid policy of the campaign driver
/// ([`crate::campaign::CellFidelity::Fluid`]).
pub(crate) fn fluid_replay_dnn(
    ev: &Evaluator,
    dnn: &Dnn,
    m: &MappedDnn,
    cfg: &FluidConfig,
    ws: &mut FlowSimWorkspace,
) -> (f64, Vec<GroupDiscrepancy>, Vec<GroupMapping>) {
    let overhead = ev.options().stage_overhead_s;
    let gms = m.group_mappings(dnn);
    let mut extra = Vec::with_capacity(gms.len());
    let mut groups = Vec::with_capacity(gms.len());
    for (gi, gm) in gms.iter().enumerate() {
        let c = check_group_fluid(ev, dnn, gm, cfg.cap_bytes, ws);
        // The evaluator's stage time already prices the envelope
        // max(compute, analytic network, DRAM); only the amount by
        // which the fluid completion exceeds that *whole envelope*
        // is unpriced congestion. Comparing against the analytic
        // network price alone would charge compute- or DRAM-bound
        // groups a phantom delay penalty for contention their
        // stage time already absorbs.
        extra.push(c.fluid_s - (m.report.groups[gi].stage_time_s - overhead));
        groups.push(GroupDiscrepancy {
            dnn: dnn.name().to_string(),
            group: gi,
            bottleneck_s: c.bottleneck_s,
            analytic_s: c.analytic_s,
            mean_link_s: c.mean_link_s,
            fluid_s: c.fluid_s,
            packet_s: None,
            packet_truncated: false,
            n_flows: c.n_flows,
        });
    }
    (m.congestion_corrected_delay(&extra), groups, gms)
}

/// Replays every group of `mapped` (one entry per DNN) through the
/// fluid simulator and returns the congestion-corrected geometric-mean
/// delay, the per-group discrepancies (DNN-major group order) and the
/// parsed per-DNN group mappings (so winner validation can replay the
/// packet rung without re-parsing).
pub(crate) fn fluid_rescore_delay(
    ev: &Evaluator,
    dnns: &[Dnn],
    mapped: &[MappedDnn],
    cfg: &FluidConfig,
) -> (f64, Vec<GroupDiscrepancy>, Vec<Vec<GroupMapping>>) {
    let mut ws = FlowSimWorkspace::new();
    let mut log_d = 0.0;
    let mut groups = Vec::new();
    let mut all_gms = Vec::with_capacity(dnns.len());
    for (dnn, m) in dnns.iter().zip(mapped) {
        let (corrected, dnn_groups, gms) = fluid_replay_dnn(ev, dnn, m, cfg, &mut ws);
        log_d += corrected.ln();
        groups.extend(dnn_groups);
        all_gms.push(gms);
    }
    let n = dnns.len().max(1) as f64;
    ((log_d / n).exp(), groups, all_gms)
}

/// Runs the re-rank (and optional winner-validation) stage shared by
/// the homogeneous and heterogeneous DSE drivers.
///
/// `scores` / `mcs_energies` describe the analytic records;
/// `remap(i)` rebuilds record `i`'s evaluator and deterministic
/// mappings (the SA engine is bit-identical given the same options, so
/// re-running it reproduces the analytic pass's mappings exactly).
/// Returns the final winner index, the report, and the per-candidate
/// re-scores to attach to the records. The top-K fan-out uses the same
/// scoped worker pool as the candidate sweep; results are in
/// deterministic index order regardless of `workers`.
#[allow(clippy::too_many_arguments)] // both DSE drivers thread their full analytic state through
pub(crate) fn run_fidelity_stage<F>(
    policy: &FidelityPolicy,
    objective: Objective,
    scores: &[f64],
    mcs_energies: &[(f64, f64)],
    analytic_best: usize,
    workers: usize,
    dnns: &[Dnn],
    remap: F,
) -> (usize, DseReport, Vec<(usize, FluidRescore)>)
where
    F: Fn(usize) -> (Evaluator, Vec<MappedDnn>) + Sync,
{
    let Some((k, fluid_cfg)) = policy.rerank_params() else {
        return (
            analytic_best,
            DseReport::analytic(analytic_best),
            Vec::new(),
        );
    };
    let k = k.clamp(1, scores.len());

    // Top-K analytic survivors, ties broken by index (total order keeps
    // the selection deterministic even on NaN-free equal scores).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    let topk = &order[..k];

    // Fluid re-scoring fans out over the shared scoped worker pool;
    // each candidate's replay is independent, so index-ordered results
    // are bit-identical at any worker count. The evaluator and mapped
    // DNNs are retained (K is small) so winner validation below does
    // not have to re-run the SA engine a third time.
    struct Rescored {
        fluid: FluidRescore,
        groups: Vec<GroupDiscrepancy>,
        ev: Evaluator,
        gms: Vec<Vec<GroupMapping>>,
    }
    let rescored: Vec<Rescored> = crate::pool::parallel_map_indexed(workers.clamp(1, k), k, |j| {
        let idx = topk[j];
        let (ev, mapped) = remap(idx);
        let (delay, groups, gms) = fluid_rescore_delay(&ev, dnns, &mapped, &fluid_cfg);
        let (mc, energy) = mcs_energies[idx];
        let worst = groups
            .iter()
            .map(GroupDiscrepancy::fluid_vs_analytic)
            .fold(1.0, f64::max);
        Rescored {
            fluid: FluidRescore {
                delay,
                score: objective.score(mc, energy, delay),
                worst_fluid_vs_analytic: worst,
            },
            groups,
            ev,
            gms,
        }
    });

    let best_j = (0..k)
        .min_by(|&a, &b| {
            rescored[a]
                .fluid
                .score
                .total_cmp(&rescored[b].fluid.score)
                .then(topk[a].cmp(&topk[b]))
        })
        .expect("k >= 1");
    let best = topk[best_j];
    let mut winner_groups = rescored[best_j].groups.clone();

    // Winner validation (rung 2): replay the winner's groups through
    // the packet simulator — reusing the mappings parsed during the
    // re-rank, the analytic/fluid rungs are already in `winner_groups`
    // — and calibrate against the packet reference. No calibration is
    // suggested below rung 2: the fluid model has no queueing,
    // arbitration or per-hop latency, so a fluid-referenced fit would
    // advise stripping the surcharge (weight ~0) that the packet
    // reference shows is needed.
    let suggested = if let Some(pcfg) = policy.packet_cfg() {
        let winner = &rescored[best_j];
        let mut packet_ws = PacketSimWorkspace::new();
        let mut obs = Vec::new();
        let mut gi_all = 0usize;
        for (dnn, gms) in dnns.iter().zip(&winner.gms) {
            for gm in gms {
                let pc = check_group_packet(
                    &winner.ev,
                    dnn,
                    gm,
                    pcfg,
                    fluid_cfg.cap_bytes,
                    &mut packet_ws,
                );
                let g = &mut winner_groups[gi_all];
                g.packet_s = Some(pc.packet_s);
                g.packet_truncated = pc.truncated;
                // A truncated replay under-reports congestion: it must
                // not drag the calibrated weight down.
                if !pc.truncated {
                    obs.push((g.bottleneck_s, g.mean_link_s, pc.packet_s));
                }
                gi_all += 1;
            }
        }
        calibrate_congestion_weight(obs)
    } else {
        None
    };

    let reranked = topk
        .iter()
        .zip(&rescored)
        .map(|(&index, r)| RerankEntry {
            index,
            analytic_score: scores[index],
            fluid_score: r.fluid.score,
        })
        .collect();
    let report = DseReport {
        policy: policy.clone(),
        analytic_best,
        best,
        reranked,
        winner_groups,
        suggested_congestion_weight: suggested,
        bound: None,
    };
    let rescores = topk
        .iter()
        .zip(rescored)
        .map(|(&index, r)| (index, r.fluid))
        .collect();
    (best, report, rescores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_accessors() {
        assert_eq!(FidelityPolicy::default(), FidelityPolicy::Analytic);
        assert!(FidelityPolicy::Analytic.rerank_params().is_none());
        assert!(FidelityPolicy::Analytic.packet_cfg().is_none());
        let (k, fluid) = FidelityPolicy::rerank(5).rerank_params().unwrap();
        assert_eq!(k, 5);
        assert_eq!(fluid, FluidConfig::default());
        assert!(FidelityPolicy::rerank(5).packet_cfg().is_none());
        let v = FidelityPolicy::validate(3);
        assert_eq!(v.rerank_params().unwrap().0, 3);
        assert_eq!(v.packet_cfg(), Some(&PacketSimConfig::default()));
    }

    #[test]
    fn analytic_report_is_trivial() {
        let r = DseReport::analytic(7);
        assert_eq!(r.best, 7);
        assert!(!r.winner_changed());
        assert_eq!(r.max_fluid_vs_analytic(), 1.0);
        let base = EvalOptions::default();
        assert_eq!(r.calibrated_eval_options(base), base);
    }

    #[test]
    fn discrepancy_ratios_and_reference() {
        let mut g = GroupDiscrepancy {
            dnn: "d".into(),
            group: 0,
            bottleneck_s: 1.0,
            analytic_s: 2.0,
            mean_link_s: 0.25,
            fluid_s: 3.0,
            packet_s: None,
            packet_truncated: false,
            n_flows: 4,
        };
        assert_eq!(g.fluid_vs_analytic(), 1.5);
        assert_eq!(g.reference_s(), 3.0);
        assert_eq!(g.reference_vs_analytic(), 1.5);
        g.packet_s = Some(3.5);
        assert_eq!(g.reference_s(), 3.5);
        assert_eq!(g.reference_vs_analytic(), 1.75);
        g.analytic_s = 0.0;
        assert_eq!(g.fluid_vs_analytic(), 1.0);
        assert_eq!(g.reference_vs_analytic(), 1.0);
    }

    #[test]
    fn compute_bound_groups_pay_no_phantom_penalty() {
        // The correction compares the fluid completion against the
        // whole priced stage envelope, not the analytic network price:
        // groups whose stage time already covers the fluid completion
        // must re-score to exactly the analytic delay.
        let dnn = gemini_model::zoo::two_conv_example();
        let arch = gemini_arch::presets::g_arch_72();
        let ev = Evaluator::new(&arch);
        let engine = crate::engine::MappingEngine::new(&ev);
        let m = engine.map_stripe(&dnn, 2, &crate::engine::MappingOptions::default());
        let (delay, groups, gms) = fluid_rescore_delay(
            &ev,
            std::slice::from_ref(&dnn),
            std::slice::from_ref(&m),
            &FluidConfig::default(),
        );
        assert_eq!(groups.len(), m.report.groups.len());
        assert_eq!(gms.len(), 1);
        assert_eq!(gms[0].len(), m.report.groups.len());
        // Monotone in every case.
        assert!(delay >= m.report.delay_s * (1.0 - 1e-12));
        let overhead = ev.options().stage_overhead_s;
        let covered = groups
            .iter()
            .zip(&m.report.groups)
            .all(|(g, gr)| g.fluid_s <= gr.stage_time_s - overhead);
        if covered {
            assert!(
                (delay - m.report.delay_s).abs() <= m.report.delay_s * 1e-12,
                "no phantom penalty when the stage envelope covers the fluid time: \
                 {delay} vs {}",
                m.report.delay_s
            );
        }
    }

    #[test]
    fn calibrated_options_apply_suggestion() {
        let mut r = DseReport::analytic(0);
        r.suggested_congestion_weight = Some(9.0);
        let opts = r.calibrated_eval_options(EvalOptions::default());
        assert_eq!(opts.congestion_weight, 9.0);
    }
}
