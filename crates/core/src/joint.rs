//! Joint graph-partition + spatial-mapping exploration.
//!
//! The paper's future-work section (Sec. V-D) proposes co-exploring the
//! SPM dimension with the graph-level dimension "such as the composite
//! spatial-temporal dimension defined by SET", instead of fixing the
//! layer groups up front with the DP partitioner. This module implements
//! that extension: a single annealer whose move set contains both the
//! five SPM operators (OP1..OP5) and four partition-level operators:
//!
//! * **JP1** — move a boundary layer between adjacent groups;
//! * **JP2** — split a group at a random internal boundary;
//! * **JP3** — merge two adjacent groups;
//! * **JP4** — re-draw a group's batch unit.
//!
//! Partition moves re-initialize the affected groups with the stripe
//! heuristic (their SPM is then re-refined by subsequent SPM moves), and
//! invalidate exactly the groups whose flow requirements changed. All
//! group evaluations go through one [`gemini_sim::EvalCache`], so
//! revisited states (e.g. a split immediately un-done by a merge) are
//! never re-simulated; the cooling schedule is shared with the SPM
//! engine ([`crate::sa::temperature`]), including its degenerate-input
//! guards.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use gemini_model::{Dnn, LayerId};
use gemini_sim::{
    DeltaStats, DramSel, EvalCache, Evaluator, GroupEvalState, GroupMapping, GroupReport,
};

use crate::encoding::{flow_needs, GroupSpec, Lms};
use crate::partition::{GraphPartition, PartitionOptions};
use crate::sa::{apply_op_traced, temperature, SaOptions, SaStats};
use crate::stripe::stripe_lms;

/// Options for the joint exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointOptions {
    /// Base SA options (iterations, temperatures, seed, SPM operator
    /// mask, objective exponents).
    pub sa: SaOptions,
    /// Probability that an iteration applies a partition-level operator
    /// instead of an SPM operator.
    pub partition_op_prob: f64,
    /// Structural limits shared with the DP partitioner.
    pub partition: PartitionOptions,
}

impl Default for JointOptions {
    fn default() -> Self {
        Self {
            sa: SaOptions::default(),
            partition_op_prob: 0.15,
            partition: PartitionOptions::default(),
        }
    }
}

/// Outcome of a joint exploration.
#[derive(Debug, Clone)]
pub struct JointOutcome {
    /// The explored partition.
    pub partition: GraphPartition,
    /// Schemes per group.
    pub lms: Vec<Lms>,
    /// Reports per group.
    pub reports: Vec<GroupReport>,
    /// Final cost `E^beta * D^gamma`.
    pub cost: f64,
    /// Statistics (SPM move stats; partition moves counted in
    /// `partition_applied`).
    pub stats: SaStats,
    /// Applied partition-level moves (JP1..JP4).
    pub partition_applied: [u32; 4],
}

struct State {
    partition: GraphPartition,
    lms: Vec<Lms>,
    reports: Vec<GroupReport>,
    e_total: f64,
    d_total: f64,
}

/// Per-group incremental-evaluator states for the joint annealer.
///
/// Entries are a pure evaluation cache: a state may lag behind the
/// *accepted* exploration state (rejected trials advance it too), which
/// is safe because [`GroupEvalState::diff_dirty`] derives the exact
/// dirty footprint against whatever mapping the state last saw — a
/// stale entry just re-simulates a few more members. Partition moves
/// that restructure groups leave structurally mismatched entries
/// behind; those fall back to a full rebuild on their next use.
struct DeltaPool {
    states: Vec<Option<GroupEvalState>>,
    delta: bool,
    /// Cold builds of never-seen slots (`GroupEvalState::new` keeps its
    /// own counters at zero, so the pool accounts them here — otherwise
    /// `full_evals`/`member_sims` would undercount one whole-group
    /// simulation per slot and overstate the reuse rate).
    cold: DeltaStats,
}

impl DeltaPool {
    fn new(n: usize, delta: bool) -> Self {
        Self {
            states: (0..n).map(|_| None).collect(),
            delta,
            cold: DeltaStats::default(),
        }
    }

    /// Evaluates group `g`'s mapping: memo cache first, then the
    /// incremental evaluator (diff-derived footprint), then a cold
    /// build for never-seen slots.
    fn evaluate(
        &mut self,
        ev: &Evaluator,
        dnn: &Dnn,
        cache: &mut EvalCache,
        g: usize,
        gm: GroupMapping,
        batch: u32,
    ) -> GroupReport {
        if g >= self.states.len() {
            self.states.resize_with(g + 1, || None);
        }
        let key = match cache.lookup(&gm, batch) {
            Ok(r) => return r,
            Err(key) => key,
        };
        let slot = &mut self.states[g];
        let r = match slot {
            Some(st) => {
                let dirty = if self.delta { st.diff_dirty(&gm) } else { None };
                st.advance(ev, dnn, &gm, dirty.as_deref())
            }
            None => {
                self.cold.full_evals += 1;
                self.cold.member_sims += gm.members.len() as u64;
                let st = GroupEvalState::new(ev, dnn, gm.clone(), batch);
                let r = st.report().clone();
                *slot = Some(st);
                r
            }
        };
        cache.insert(key, &gm, batch, r.clone());
        r
    }

    fn stats(&self) -> DeltaStats {
        let mut s = self.cold;
        for st in self.states.iter().flatten() {
            s.add(&st.stats());
        }
        s
    }
}

impl State {
    fn cost(&self, opts: &SaOptions) -> f64 {
        self.e_total.powf(opts.beta) * self.d_total.powf(opts.gamma)
    }
}

/// Runs the joint partition + SPM annealer.
///
/// `init` is the starting partition (typically from
/// [`crate::partition::partition_graph`]); its schemes are initialized
/// with the stripe heuristic.
pub fn optimize_joint(
    dnn: &Dnn,
    ev: &Evaluator,
    init: GraphPartition,
    batch: u32,
    opts: &JointOptions,
) -> JointOutcome {
    let arch = ev.arch().clone();
    let mut rng = StdRng::seed_from_u64(opts.sa.seed);
    // One memo cache for the whole run: partition moves oscillate
    // between a handful of stripe states, which become cache hits.
    let mut cache = if opts.sa.cache {
        EvalCache::new()
    } else {
        EvalCache::with_capacity(0)
    };

    let lms: Vec<Lms> = init
        .groups
        .iter()
        .map(|g| stripe_lms(dnn, &arch, g))
        .collect();
    let mut pool = DeltaPool::new(init.groups.len(), opts.sa.delta);
    let mut st = State {
        partition: init,
        lms,
        reports: Vec::new(),
        e_total: 0.0,
        d_total: 0.0,
    };
    reevaluate_all(dnn, ev, &mut cache, &mut pool, &mut st, batch);
    let mut cost = st.cost(&opts.sa);

    let mut stats = SaStats {
        init_cost: cost,
        ..Default::default()
    };
    let mut partition_applied = [0u32; 4];

    let mut best = (
        st.partition.clone(),
        st.lms.clone(),
        st.reports.clone(),
        cost,
    );

    let max_len = opts
        .partition
        .max_group_layers
        .min(arch.n_cores() as usize)
        .max(1);
    let units: Vec<u32> = opts
        .partition
        .batch_units
        .iter()
        .map(|&u| u.min(batch).max(1))
        .collect();

    let enabled: Vec<usize> = (0..5).filter(|&i| opts.sa.enabled_ops[i]).collect();

    for iter in 0..opts.sa.iters {
        stats.iters = iter + 1;
        let t = temperature(&opts.sa, iter, opts.sa.iters);

        let use_partition_op = rng.gen::<f64>() < opts.partition_op_prob || enabled.is_empty();
        let (trial, op_kind) = if use_partition_op {
            let Some((s, k)) = partition_move(
                dnn, ev, &mut cache, &mut pool, &st, batch, max_len, &units, &mut rng,
            ) else {
                stats.failed_ops += 1;
                continue;
            };
            (s, PartitionOrSpm::Partition(k))
        } else {
            let Some((s, op)) = spm_move(
                dnn, ev, &mut cache, &mut pool, &st, batch, &enabled, &mut rng,
            ) else {
                stats.failed_ops += 1;
                continue;
            };
            (s, PartitionOrSpm::Spm(op))
        };

        let new_cost = trial.cost(&opts.sa);
        let delta = (new_cost - cost) / cost.max(f64::MIN_POSITIVE);
        if delta <= 0.0 || rng.gen::<f64>() < (-delta / t).exp() {
            if new_cost < cost {
                stats.improved += 1;
            }
            stats.accepted += 1;
            match op_kind {
                PartitionOrSpm::Spm(op) => stats.op_applied[op] += 1,
                PartitionOrSpm::Partition(k) => partition_applied[k] += 1,
            }
            st = trial;
            cost = new_cost;
            if cost < best.3 {
                best = (
                    st.partition.clone(),
                    st.lms.clone(),
                    st.reports.clone(),
                    cost,
                );
            }
        }
    }

    stats.final_cost = best.3;
    stats.cache_hits = cache.hits();
    stats.cache_misses = cache.misses();
    stats.add_delta(&pool.stats());
    JointOutcome {
        partition: best.0,
        lms: best.1,
        reports: best.2,
        cost: best.3,
        stats,
        partition_applied,
    }
}

enum PartitionOrSpm {
    Spm(usize),
    Partition(usize),
}

/// Applies one SPM operator to a random group of a cloned state.
#[allow(clippy::too_many_arguments)] // threads the shared memo cache through the hot path
fn spm_move(
    dnn: &Dnn,
    ev: &Evaluator,
    cache: &mut EvalCache,
    pool: &mut DeltaPool,
    st: &State,
    batch: u32,
    enabled: &[usize],
    rng: &mut StdRng,
) -> Option<(State, usize)> {
    if st.partition.groups.is_empty() {
        return None;
    }
    let g = rng.gen_range(0..st.partition.groups.len());
    let op = enabled[rng.gen_range(0..enabled.len())];
    let spec = &st.partition.groups[g];
    let mut lms = st.lms[g].clone();
    let trace = apply_op_traced(op, dnn, ev.arch(), spec, &mut lms, rng)?;
    let mut trial = State {
        partition: st.partition.clone(),
        lms: st.lms.clone(),
        reports: st.reports.clone(),
        e_total: st.e_total,
        d_total: st.d_total,
    };
    trial.lms[g] = lms;

    // The operator's declared dirty-layer footprint must cover the
    // actual change to the group's parsed mapping — the incremental
    // evaluator's invalidation (a diff against its last-seen mapping)
    // relies on member-level locality, so verify the declaration here
    // where the pre- and post-move schemes are both at hand.
    #[cfg(debug_assertions)]
    {
        let map = of_map(dnn, &trial);
        let resolver = |p: LayerId| map.get(&p).copied().unwrap_or(DramSel::Interleaved);
        let before = st.lms[g].parse(dnn, spec, &resolver);
        let after = trial.lms[g].parse(dnn, spec, &resolver);
        for (i, (a, b)) in before.members.iter().zip(&after.members).enumerate() {
            debug_assert!(
                a == b || trace.dirty.contains(&i),
                "OP{} changed member {i} outside its declared footprint {:?}",
                op + 1,
                trace.dirty
            );
        }
    }
    let _ = &trace;

    // SPM moves may change this group's FD (OP5), which redirects its
    // consumers; conservatively re-evaluate the group and its consumers
    // (a non-OF move leaves the consumers' mappings unchanged, which the
    // memo cache answers without re-simulation).
    let mut affected = vec![g];
    affected.extend(consumers_of(dnn, &trial.partition, g));
    reevaluate(dnn, ev, cache, pool, &mut trial, batch, &affected);
    Some((trial, op))
}

/// Applies one partition-level operator (JP1..JP4) to a cloned state.
#[allow(clippy::too_many_arguments)] // threads the shared memo cache through the hot path
fn partition_move(
    dnn: &Dnn,
    ev: &Evaluator,
    cache: &mut EvalCache,
    pool: &mut DeltaPool,
    st: &State,
    batch: u32,
    max_len: usize,
    units: &[u32],
    rng: &mut StdRng,
) -> Option<(State, usize)> {
    let n = st.partition.groups.len();
    if n == 0 {
        return None;
    }
    let kind = rng.gen_range(0..4usize);
    let mut part = st.partition.clone();
    let changed: Vec<usize> = match kind {
        // JP1: move a boundary layer between adjacent groups.
        0 => {
            if n < 2 {
                return None;
            }
            let g = rng.gen_range(0..n - 1);
            if rng.gen::<bool>() {
                // Last layer of g moves to the front of g+1.
                if part.groups[g].members.len() < 2 || part.groups[g + 1].members.len() >= max_len {
                    return None;
                }
                let l = part.groups[g].members.pop().expect("non-empty");
                part.groups[g + 1].members.insert(0, l);
            } else {
                // First layer of g+1 moves to the back of g.
                if part.groups[g + 1].members.len() < 2 || part.groups[g].members.len() >= max_len {
                    return None;
                }
                let l = part.groups[g + 1].members.remove(0);
                part.groups[g].members.push(l);
            }
            vec![g, g + 1]
        }
        // JP2: split a group.
        1 => {
            let g = rng.gen_range(0..n);
            let len = part.groups[g].members.len();
            if len < 2 {
                return None;
            }
            let cut = rng.gen_range(1..len);
            let tail = part.groups[g].members.split_off(cut);
            let bu = part.groups[g].batch_unit;
            part.groups.insert(
                g + 1,
                GroupSpec {
                    members: tail,
                    batch_unit: bu,
                },
            );
            vec![g, g + 1]
        }
        // JP3: merge two adjacent groups.
        2 => {
            if n < 2 {
                return None;
            }
            let g = rng.gen_range(0..n - 1);
            if part.groups[g].members.len() + part.groups[g + 1].members.len() > max_len {
                return None;
            }
            let tail = part.groups.remove(g + 1);
            part.groups[g].members.extend(tail.members);
            vec![g]
        }
        // JP4: re-draw a batch unit.
        _ => {
            let g = rng.gen_range(0..n);
            let cur = part.groups[g].batch_unit;
            let choices: Vec<u32> = units.iter().copied().filter(|&u| u != cur).collect();
            if choices.is_empty() {
                return None;
            }
            part.groups[g].batch_unit = choices[rng.gen_range(0..choices.len())];
            vec![g]
        }
    };

    // Re-stripe every group whose membership or flow requirements
    // changed: the changed groups plus any group holding a pred/succ of
    // a changed layer (their OF explicitness may flip).
    let mut trial = State {
        partition: part,
        lms: st.lms.clone(),
        reports: st.reports.clone(),
        e_total: st.e_total,
        d_total: st.d_total,
    };
    // Rebuild the lms vector to the new group count.
    let mut lms = Vec::with_capacity(trial.partition.groups.len());
    let mut reports = Vec::with_capacity(trial.partition.groups.len());
    // Map old groups to new by membership signature where unchanged.
    let mut old_idx: BTreeMap<LayerId, usize> = BTreeMap::new();
    for (i, g) in st.partition.groups.iter().enumerate() {
        old_idx.insert(g.members[0], i);
    }
    for g in &trial.partition.groups {
        match old_idx.get(&g.members[0]) {
            Some(&i)
                if st.partition.groups[i].members == g.members
                    && st.partition.groups[i].batch_unit == g.batch_unit =>
            {
                lms.push(st.lms[i].clone());
                reports.push(st.reports[i].clone());
            }
            _ => {
                lms.push(stripe_lms(dnn, ev.arch(), g));
                // Placeholder; re-evaluated below.
                reports.push(st.reports[0].clone());
            }
        }
    }
    trial.lms = lms;
    trial.reports = reports;

    // Determine all groups to (re-)evaluate: any group whose scheme we
    // re-striped, plus neighbours touching the changed layers.
    let mut affected: Vec<usize> = Vec::new();
    for (gi, g) in trial.partition.groups.iter().enumerate() {
        let unchanged = old_idx
            .get(&g.members[0])
            .map(|&i| {
                st.partition.groups[i].members == g.members
                    && st.partition.groups[i].batch_unit == g.batch_unit
            })
            .unwrap_or(false);
        if !unchanged {
            affected.push(gi);
        }
    }
    let _ = changed;
    // Re-stripe groups whose flow needs changed because a neighbour's
    // membership changed (their schemes may now have wrong FD
    // explicitness), then evaluate everything affected + consumers.
    let mut to_fix: Vec<usize> = Vec::new();
    for (gi, g) in trial.partition.groups.iter().enumerate() {
        if affected.contains(&gi) {
            continue;
        }
        let lms_g = &trial.lms[gi];
        let ok = lms_g.validate(dnn, ev.arch(), g).is_ok();
        if !ok {
            to_fix.push(gi);
        }
    }
    for gi in to_fix {
        trial.lms[gi] = stripe_lms(dnn, ev.arch(), &trial.partition.groups[gi]);
        affected.push(gi);
    }
    let mut eval_set = affected.clone();
    for &a in &affected {
        eval_set.extend(consumers_of(dnn, &trial.partition, a));
    }
    eval_set.sort_unstable();
    eval_set.dedup();
    reevaluate(dnn, ev, cache, pool, &mut trial, batch, &eval_set);
    Some((trial, kind))
}

/// Groups consuming outputs of group `g` (set-based dedup; sorted).
fn consumers_of(dnn: &Dnn, partition: &GraphPartition, g: usize) -> Vec<usize> {
    let mut group_of: BTreeMap<LayerId, usize> = BTreeMap::new();
    for (gi, gr) in partition.groups.iter().enumerate() {
        for &m in &gr.members {
            group_of.insert(m, gi);
        }
    }
    let mut out = BTreeSet::new();
    for &m in &partition.groups[g].members {
        for &s in dnn.succs(m) {
            if let Some(&cg) = group_of.get(&s) {
                if cg != g {
                    out.insert(cg);
                }
            }
        }
    }
    out.into_iter().collect()
}

fn of_map(dnn: &Dnn, st: &State) -> BTreeMap<LayerId, DramSel> {
    let mut map = BTreeMap::new();
    for (spec, lms) in st.partition.groups.iter().zip(&st.lms) {
        for (ms, &id) in lms.schemes.iter().zip(&spec.members) {
            if flow_needs(dnn, spec, id).explicit_of {
                if let Some(sel) = DramSel::from_fd(ms.fd.ofm) {
                    map.insert(id, sel);
                }
            }
        }
    }
    map
}

fn reevaluate(
    dnn: &Dnn,
    ev: &Evaluator,
    cache: &mut EvalCache,
    pool: &mut DeltaPool,
    st: &mut State,
    batch: u32,
    groups: &[usize],
) {
    let map = of_map(dnn, st);
    let resolver = |p: LayerId| map.get(&p).copied().unwrap_or(DramSel::Interleaved);
    for &g in groups {
        let spec = &st.partition.groups[g];
        let gm = st.lms[g].parse(dnn, spec, &resolver);
        st.reports[g] = pool.evaluate(ev, dnn, cache, g, gm, batch);
    }
    st.e_total = st.reports.iter().map(|r| r.energy.total()).sum();
    st.d_total = st.reports.iter().map(|r| r.delay_s).sum();
}

fn reevaluate_all(
    dnn: &Dnn,
    ev: &Evaluator,
    cache: &mut EvalCache,
    pool: &mut DeltaPool,
    st: &mut State,
    batch: u32,
) {
    let map = of_map(dnn, st);
    let resolver = |p: LayerId| map.get(&p).copied().unwrap_or(DramSel::Interleaved);
    st.reports = st
        .partition
        .groups
        .iter()
        .zip(&st.lms)
        .enumerate()
        .map(|(g, (spec, lms))| {
            let gm = lms.parse(dnn, spec, &resolver);
            pool.evaluate(ev, dnn, cache, g, gm, batch)
        })
        .collect();
    st.e_total = st.reports.iter().map(|r| r.energy.total()).sum();
    st.d_total = st.reports.iter().map(|r| r.delay_s).sum();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_graph;
    use gemini_arch::presets;
    use gemini_model::zoo;

    fn setup() -> (Dnn, Evaluator, GraphPartition) {
        let dnn = zoo::tiny_resnet();
        let arch = presets::g_arch_72();
        let ev = Evaluator::new(&arch);
        let partition = partition_graph(&dnn, &arch, 8, &PartitionOptions::default());
        (dnn, ev, partition)
    }

    #[test]
    fn joint_never_regresses_best() {
        let (dnn, ev, init) = setup();
        let opts = JointOptions {
            sa: SaOptions {
                iters: 200,
                seed: 5,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = optimize_joint(&dnn, &ev, init, 8, &opts);
        assert!(out.cost <= out.stats.init_cost * (1.0 + 1e-9));
        assert_eq!(out.lms.len(), out.partition.groups.len());
        assert_eq!(out.reports.len(), out.partition.groups.len());
    }

    #[test]
    fn joint_outcome_is_valid() {
        let (dnn, ev, init) = setup();
        let opts = JointOptions {
            sa: SaOptions {
                iters: 300,
                seed: 11,
                ..Default::default()
            },
            partition_op_prob: 0.4,
            ..Default::default()
        };
        let out = optimize_joint(&dnn, &ev, init, 8, &opts);
        // Partition still tiles the computable layers contiguously.
        let layers: Vec<LayerId> = dnn.compute_ids().collect();
        let mut idx = 0;
        for g in &out.partition.groups {
            assert!(!g.members.is_empty());
            for &m in &g.members {
                assert_eq!(m, layers[idx], "partition must stay a contiguous tiling");
                idx += 1;
            }
        }
        assert_eq!(idx, layers.len());
        // All schemes validate against their groups.
        for (lms, spec) in out.lms.iter().zip(&out.partition.groups) {
            lms.validate(&dnn, ev.arch(), spec).unwrap();
        }
    }

    #[test]
    fn partition_moves_fire() {
        let (dnn, ev, init) = setup();
        let opts = JointOptions {
            sa: SaOptions {
                iters: 400,
                seed: 2,
                t0: 0.5,
                ..Default::default()
            },
            partition_op_prob: 0.8,
            ..Default::default()
        };
        let out = optimize_joint(&dnn, &ev, init, 8, &opts);
        let total: u32 = out.partition_applied.iter().sum();
        assert!(
            total > 0,
            "partition-level moves should be applied: {:?}",
            out.partition_applied
        );
    }

    #[test]
    fn joint_matches_or_beats_staged_on_small_net() {
        let (dnn, ev, init) = setup();
        let staged = crate::sa::optimize(
            &dnn,
            &ev,
            &init,
            init.groups
                .iter()
                .map(|g| stripe_lms(&dnn, ev.arch(), g))
                .collect(),
            8,
            &SaOptions {
                iters: 250,
                seed: 7,
                ..Default::default()
            },
        );
        let joint = optimize_joint(
            &dnn,
            &ev,
            init,
            8,
            &JointOptions {
                sa: SaOptions {
                    iters: 250,
                    seed: 7,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        // Joint explores a superset of the space; allow some slack
        // because its budget is split across dimensions and the staged
        // engine anneals every group in a dedicated chain with an
        // anchored cooling schedule (which made it a stronger baseline).
        assert!(
            joint.cost <= staged.cost * 1.25,
            "joint {} should stay competitive with staged {}",
            joint.cost,
            staged.cost
        );
    }
}
