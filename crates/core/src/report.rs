//! CSV report helpers for the experiment harnesses.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Writes a CSV file (creating parent directories) with a header line
/// and pre-formatted rows.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &str,
    rows: impl IntoIterator<Item = String>,
) -> io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}

/// Formats a float with enough precision for the CSVs while staying
/// readable (6 significant digits).
pub fn sig6(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let mag = x.abs().log10().floor() as i32;
    let decimals = (5 - mag).clamp(0, 12) as usize;
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_reads_back() {
        let dir = std::env::temp_dir().join("gemini_report_test");
        let path = dir.join("t.csv");
        write_csv(&path, "a,b", vec!["1,2".to_string(), "3,4".to_string()]).unwrap();
        let s = fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,b\n1,2\n3,4\n");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sig6_formats() {
        assert_eq!(sig6(0.0), "0");
        assert_eq!(sig6(1.0), "1.00000");
        assert_eq!(sig6(123456.0), "123456");
        assert!(sig6(0.000123).starts_with("0.000123"));
    }
}
