//! Architecture design-space exploration (Sec. V-A and Table I).
//!
//! All architecture-parameter candidates are enumerated exhaustively and
//! each is scored `MC^alpha * E^beta * D^gamma`, with E and D the
//! geometric means over the input DNNs of the energy and delay achieved
//! by the mapping engine on that candidate. Exploration parallelizes
//! over candidates with a scoped-thread worker pool.
//!
//! [`scale_arch`] supports the chiplet-reuse study (Sec. VII-B): it
//! builds a higher-compute accelerator out of more instances of the same
//! computing chiplet.

use serde::{Deserialize, Serialize};

use gemini_arch::{arrange_cores, ArchConfig, Topology};
use gemini_cost::CostModel;
use gemini_model::Dnn;
use gemini_sim::Evaluator;

use crate::engine::{parse_all, MappingEngine, MappingOptions};
use crate::fidelity::{BoundMode, BoundStats, DseReport, FidelityPolicy, FluidRescore};
use crate::partition::partition_graph;
use crate::stripe::stripe_lms;

/// The objective type lives in [`crate::objective`]; `Objective` is the
/// historical name of [`ObjectiveSpec`], kept so existing imports
/// (`gemini_core::dse::Objective`) keep compiling.
pub use crate::objective::{
    ObjectiveParseError, ObjectiveSpec, ObjectiveSpec as Objective, VALID_FORMS,
};

/// The DSE parameter grid (Table I of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseSpec {
    /// Target computing power in TOPS.
    pub tops: f64,
    /// Candidate XCut/YCut values (must divide the core grid).
    pub cuts: Vec<u32>,
    /// DRAM bandwidth per TOPS (GB/s/TOPS).
    pub dram_bw_per_tops: Vec<f64>,
    /// NoC link bandwidths (GB/s).
    pub noc_bw: Vec<f64>,
    /// D2D bandwidth as a fraction of NoC bandwidth.
    pub d2d_ratio: Vec<f64>,
    /// GLB capacities per core (KiB).
    pub glb_kb: Vec<u64>,
    /// MACs per core.
    pub macs: Vec<u32>,
    /// Operating frequency (GHz).
    pub freq_ghz: f64,
}

impl DseSpec {
    /// Table I for the given computing power: 72 TOPs uses cuts
    /// {1,2,3,6}; 128/512 TOPs use {1,2,4,8}.
    pub fn table1(tops: f64) -> Self {
        let cuts = if (tops - 72.0).abs() < 16.0 {
            vec![1, 2, 3, 6]
        } else {
            vec![1, 2, 4, 8]
        };
        Self {
            tops,
            cuts,
            dram_bw_per_tops: vec![0.5, 1.0, 2.0],
            noc_bw: vec![8.0, 16.0, 32.0, 64.0, 128.0],
            d2d_ratio: vec![0.25, 0.5, 1.0],
            glb_kb: vec![256, 512, 1024, 2048, 4096, 8192],
            macs: vec![512, 1024, 2048, 4096, 8192],
            freq_ghz: 1.0,
        }
    }

    /// Core count and near-square grid for a MAC/core choice.
    ///
    /// The paper keeps total computing power at-or-just-above the target
    /// and arranges cores near-square (36 -> 6x6, 18 -> 6x3, 72 -> 9x8).
    /// We search the first few counts at/above `tops / (2*macs*freq)`
    /// and pick the one admitting the most valid (XCut, YCut) pairs,
    /// breaking ties by squareness and then by count.
    pub fn grid_for(&self, macs: u32) -> Option<(u32, u32)> {
        let target = self.tops * 1e12 / (2.0 * macs as f64 * self.freq_ghz * 1e9);
        let lo = target.ceil().max(1.0) as u32;
        let hi = ((target * 1.08).ceil() as u32 + 2).max(lo);
        // Candidate sort key: (-cut_pairs, squareness, core_count).
        type GridKey = (i64, i64, i64);
        let mut best: Option<(GridKey, (u32, u32))> = None;
        for n in lo..=hi {
            let (x, y) = arrange_cores(n);
            let pairs = self.cuts.iter().filter(|&&c| x % c == 0).count()
                * self.cuts.iter().filter(|&&c| y % c == 0).count();
            // Sort key: most cut pairs, then most square, then lowest n.
            let key = (-(pairs as i64), squareness_milli(x, y), n as i64);
            if best.map_or(true, |(k, _)| key < k) {
                best = Some((key, (x, y)));
            }
        }
        best.map(|(_, g)| g)
    }

    /// Enumerates every valid architecture candidate of the grid.
    pub fn candidates(&self) -> Vec<ArchConfig> {
        let mut out = Vec::new();
        for &macs in &self.macs {
            let Some((x, y)) = self.grid_for(macs) else {
                continue;
            };
            for &xcut in &self.cuts {
                if x % xcut != 0 {
                    continue;
                }
                for &ycut in &self.cuts {
                    if y % ycut != 0 {
                        continue;
                    }
                    let monolithic = xcut == 1 && ycut == 1;
                    for &dpt in &self.dram_bw_per_tops {
                        for &noc in &self.noc_bw {
                            for (ri, &ratio) in self.d2d_ratio.iter().enumerate() {
                                // Monolithic candidates have no D2D links:
                                // the ratio sweep would only duplicate them.
                                if monolithic && ri > 0 {
                                    continue;
                                }
                                for &glb in &self.glb_kb {
                                    if let Ok(a) = ArchConfig::builder()
                                        .cores(x, y)
                                        .cuts(xcut, ycut)
                                        .noc_bw(noc)
                                        .d2d_bw(noc * ratio)
                                        .dram_bw(dpt * self.tops)
                                        .glb_kb(glb)
                                        .macs_per_core(macs)
                                        .freq_ghz(self.freq_ghz)
                                        .build()
                                    {
                                        out.push(a);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Symmetric squareness of a grid: `max(x, y) / min(x, y) * 1000`,
/// rounded (1000 = perfectly square; larger = skinnier). Symmetric in
/// its arguments, unlike the raw `x / y` aspect ratio a previous
/// tie-break used — under that key a 3x6 grid (aspect 0.5) ranked
/// *above* the 6x6 square the tie-break claims to prefer.
fn squareness_milli(x: u32, y: u32) -> i64 {
    let (hi, lo) = (x.max(y).max(1), x.min(y).max(1));
    (hi as f64 / lo as f64 * 1000.0).round() as i64
}

/// One explored candidate with its metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DseRecord {
    /// The architecture.
    pub arch: ArchConfig,
    /// Monetary cost in dollars.
    pub mc: f64,
    /// MC breakdown (silicon, dram, package).
    pub mc_breakdown: (f64, f64, f64),
    /// Geometric-mean energy over the DNNs (J).
    pub energy: f64,
    /// Geometric-mean delay over the DNNs (s).
    pub delay: f64,
    /// Objective score.
    pub score: f64,
    /// Per-DNN (name, energy, delay).
    pub per_dnn: Vec<(String, f64, f64)>,
    /// Congestion-aware re-score from the fidelity re-rank stage
    /// (`None` for candidates the policy did not re-score).
    pub fluid: Option<FluidRescore>,
    /// SA evaluation counters summed over this candidate's mapping
    /// runs (cache hits/misses, delta hits, full evals, member-layer
    /// sims/reuses); the cost fields are zero — per-DNN costs live in
    /// `per_dnn`.
    pub sa_stats: crate::sa::SaStats,
    /// Rung-0 bound diagnostics (`None` when the DSE ran with
    /// [`BoundMode::Off`]).
    pub bound: Option<RecordBound>,
    /// Whether this candidate was pruned before SA: its bound already
    /// lost to the achieved seed threshold, so `energy`/`delay`/`score`
    /// hold the *bound* values (themselves worse than the winner),
    /// `per_dnn` is empty and `sa_stats` is zeroed.
    pub pruned: bool,
}

/// Rung-0 bound diagnostics of one DSE candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordBound {
    /// Lower-bound objective score.
    pub score: f64,
    /// Geometric-mean lower-bound energy over the DNNs (J).
    pub energy: f64,
    /// Geometric-mean lower-bound delay over the DNNs (s).
    pub delay: f64,
    /// Achieved/bound score ratio (>= 1 up to float noise) — the
    /// convergence diagnostic. `None` for pruned candidates (never
    /// evaluated).
    pub gap: Option<f64>,
}

impl DseRecord {
    /// Energy-delay product of the geometric means.
    pub fn edp(&self) -> f64 {
        self.energy * self.delay
    }
}

/// DSE options.
#[derive(Debug, Clone)]
pub struct DseOptions {
    /// Objective exponents.
    pub objective: Objective,
    /// Batch size per DNN (the paper's DSE uses 64).
    pub batch: u32,
    /// Mapping options (SA budget etc.).
    pub mapping: MappingOptions,
    /// Worker threads.
    pub threads: usize,
    /// Keep only every candidate whose index is divisible by this stride
    /// (1 = full grid); lets the quick mode subsample Table I.
    pub stride: usize,
    /// How much of the NoC fidelity ladder the DSE consults: analytic
    /// only, fluid re-rank of the top-K survivors, or re-rank plus
    /// packet validation of the winner (see
    /// [`crate::fidelity::FidelityPolicy`]).
    pub fidelity: FidelityPolicy,
    /// Rung-0 analytic-bound pre-filter: off, report-only, or prune
    /// (see [`BoundMode`]). Pruning never changes the winner or the
    /// fidelity top-K — it only skips SA on candidates whose bound
    /// already loses to an achieved incumbent.
    pub bound: BoundMode,
}

impl Default for DseOptions {
    fn default() -> Self {
        Self {
            objective: Objective::mc_e_d(),
            batch: 64,
            mapping: MappingOptions::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            stride: 1,
            fidelity: FidelityPolicy::Analytic,
            bound: BoundMode::Off,
        }
    }
}

/// DSE result: all evaluated records plus the best index.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// Evaluated candidates.
    pub records: Vec<DseRecord>,
    /// Index of the best record under the objective (after any fidelity
    /// re-rank the options requested).
    pub best: usize,
    /// Fidelity-ladder outcome: which rungs ran, how the ranking moved,
    /// and the winner's per-group analytic-vs-reference discrepancy.
    pub report: DseReport,
}

impl DseResult {
    /// The best architecture found.
    pub fn best_record(&self) -> &DseRecord {
        &self.records[self.best]
    }

    /// Re-ranks under a different objective without re-running mappings.
    ///
    /// Scores from the *analytic* metrics only: fluid re-scores exist
    /// just for the top-K of the objective the DSE ran, so they cannot
    /// be compared across the whole record list. After a fidelity
    /// re-rank that overturned the analytic winner, `best_under` with
    /// the original objective can therefore disagree with
    /// [`DseResult::best_record`].
    pub fn best_under(&self, obj: Objective) -> &DseRecord {
        self.records
            .iter()
            .min_by(|a, b| {
                let sa = obj.score(a.mc, a.energy, a.delay);
                let sb = obj.score(b.mc, b.energy, b.delay);
                sa.total_cmp(&sb)
            })
            .expect("non-empty DSE")
    }
}

/// Evaluates one candidate architecture on all DNNs.
pub fn evaluate_candidate(
    arch: &ArchConfig,
    dnns: &[Dnn],
    cost: &CostModel,
    opts: &DseOptions,
) -> DseRecord {
    let mc_rep = cost.evaluate(arch);
    let ev = Evaluator::new(arch);
    let engine = MappingEngine::new(&ev);
    let mut per_dnn = Vec::with_capacity(dnns.len());
    let mut log_e = 0.0;
    let mut log_d = 0.0;
    let mut sa_stats = crate::sa::SaStats::default();
    for dnn in dnns {
        let mapped = engine.map(dnn, opts.batch, &opts.mapping);
        let e = mapped.report.energy.total();
        let d = mapped.report.delay_s;
        log_e += e.ln();
        log_d += d.ln();
        if let Some(s) = &mapped.sa_stats {
            sa_stats.add_counters(s);
        }
        per_dnn.push((dnn.name().to_string(), e, d));
    }
    let n = dnns.len().max(1) as f64;
    let energy = (log_e / n).exp();
    let delay = (log_d / n).exp();
    let mc = mc_rep.total();
    DseRecord {
        arch: arch.clone(),
        mc,
        mc_breakdown: (mc_rep.silicon, mc_rep.dram, mc_rep.package),
        energy,
        delay,
        score: opts.objective.score(mc, energy, delay),
        per_dnn,
        fluid: None,
        sa_stats,
        bound: None,
        pruned: false,
    }
}

/// Rung-0 bound of one candidate: the closed-form lower bound of
/// [`gemini_sim::bound`] on the structural stripe mapping (flow
/// selectors and batch units are invariant across the SA space, so the
/// result bounds every mapping SA could reach), geometric-meaned over
/// the DNNs and scored with the exact monetary cost.
pub(crate) fn bound_candidate(
    arch: &ArchConfig,
    dnns: &[Dnn],
    cost: &CostModel,
    opts: &DseOptions,
) -> CandidateBound {
    let mc = cost.evaluate(arch).total();
    let ev = Evaluator::new(arch);
    let mut log_e = 0.0;
    let mut log_d = 0.0;
    for dnn in dnns {
        let partition = partition_graph(dnn, arch, opts.batch, &opts.mapping.partition);
        let lms: Vec<crate::encoding::Lms> = partition
            .groups
            .iter()
            .map(|g| stripe_lms(dnn, arch, g))
            .collect();
        let gms = parse_all(dnn, &partition, &lms);
        let b = gemini_sim::bound::dnn_bound(&ev, dnn, &gms, opts.batch);
        log_e += b.energy_j.ln();
        log_d += b.delay_s.ln();
    }
    let n = dnns.len().max(1) as f64;
    let energy = (log_e / n).exp();
    let delay = (log_d / n).exp();
    CandidateBound {
        score: opts.objective.score(mc, energy, delay),
        energy,
        delay,
    }
}

/// One candidate's rung-0 bound metrics.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CandidateBound {
    pub(crate) score: f64,
    pub(crate) energy: f64,
    pub(crate) delay: f64,
}

/// The rung-0 pre-filter plan: per-candidate bounds, the seed set that
/// establishes the achieved threshold, and the prune mask. Identical
/// between [`BoundMode::Report`] and [`BoundMode::Prune`] (the mask is
/// computed either way; only `Prune` acts on it).
pub(crate) struct BoundPlan {
    pub(crate) bounds: Vec<CandidateBound>,
    pub(crate) seed: Vec<bool>,
    pub(crate) pruned: Vec<bool>,
    pub(crate) threshold: f64,
}

impl BoundPlan {
    /// Report statistics; `winner_gap` is the winner's achieved/bound
    /// score ratio.
    pub(crate) fn stats(&self, winner_achieved: f64, winner: usize) -> BoundStats {
        let wb = self.bounds[winner].score;
        BoundStats {
            total: self.bounds.len(),
            seeds: self.seed.iter().filter(|&&s| s).count(),
            pruned: self.pruned.iter().filter(|&&p| p).count(),
            threshold: self.threshold,
            winner_gap: if wb > 0.0 { winner_achieved / wb } else { 1.0 },
        }
    }
}

/// How many best-bounded candidates are fully evaluated to establish
/// the achieved prune threshold. Must be at least the fidelity
/// re-rank's `k` so the achieved top-K provably survives pruning; the
/// floor of 8 keeps the threshold honest on `analytic`-only sweeps.
pub(crate) fn seed_count(policy: &FidelityPolicy, n: usize) -> usize {
    let k = policy.rerank_params().map(|(k, _)| k).unwrap_or(0);
    k.max(8).min(n.max(1))
}

/// How many evaluated candidates must provably rank at-or-below the
/// prune threshold for pruning to be invisible: the fidelity re-rank
/// consumes the achieved top-`k`, so `k` of them must survive; the
/// plain analytic policy only needs the winner.
pub(crate) fn survivors_needed(policy: &FidelityPolicy) -> usize {
    policy.rerank_params().map(|(k, _)| k).unwrap_or(0).max(1)
}

/// Chooses the seed set: the best `seed_count` candidates by bound
/// score, ties broken by index. A candidate is later flagged only when
/// its bound *strictly* exceeds the `survivors_needed`-th best
/// achieved seed score, so the true winner — whose achieved score is
/// at most that threshold, hence also its bound — is never flagged,
/// and neither is any candidate of the achieved top-K.
pub(crate) fn bound_seed_mask(bounds: &[CandidateBound], n_seeds: usize) -> Vec<bool> {
    let mut order: Vec<usize> = (0..bounds.len()).collect();
    order.sort_by(|&a, &b| bounds[a].score.total_cmp(&bounds[b].score).then(a.cmp(&b)));
    let mut seed = vec![false; bounds.len()];
    for &i in order.iter().take(n_seeds) {
        seed[i] = true;
    }
    seed
}

/// The record of a pruned candidate: exact monetary cost, bound
/// metrics in place of achieved ones, no per-DNN data and zeroed SA
/// counters. Its score is strictly worse than the achieved scores of
/// at least `survivors_needed` evaluated seeds, so it can never be
/// selected as winner or enter the fidelity top-K.
fn pruned_record(arch: &ArchConfig, cost: &CostModel, cb: &CandidateBound) -> DseRecord {
    let mc_rep = cost.evaluate(arch);
    DseRecord {
        arch: arch.clone(),
        mc: mc_rep.total(),
        mc_breakdown: (mc_rep.silicon, mc_rep.dram, mc_rep.package),
        energy: cb.energy,
        delay: cb.delay,
        score: cb.score,
        per_dnn: Vec::new(),
        fluid: None,
        sa_stats: crate::sa::SaStats::default(),
        bound: None,
        pruned: true,
    }
}

/// Runs the exhaustive DSE over a parameter grid.
///
/// # Panics
///
/// Panics if the grid produces no valid candidates.
pub fn run_dse(dnns: &[Dnn], spec: &DseSpec, opts: &DseOptions) -> DseResult {
    let candidates: Vec<ArchConfig> = spec
        .candidates()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % opts.stride.max(1) == 0)
        .map(|(_, a)| a)
        .collect();
    run_dse_over(&candidates, dnns, opts)
}

/// Runs the DSE over an explicit candidate list (used by the reuse
/// study and the torus comparison).
///
/// Parallelism is two-level: candidates fan out over `opts.threads`
/// workers here, and each mapping run fans its per-group SA chains out
/// over [`crate::sa::SaOptions::threads`]. When the candidate level
/// already uses multiple workers and the SA level is on auto (`0`),
/// the inner level is pinned to one thread so the machine is not
/// oversubscribed by `workers x chains`; results are unaffected (the
/// SA engine is deterministic at any thread count). The fidelity
/// re-rank stage requested by [`DseOptions::fidelity`] fans out over
/// the same worker pool with the same bit-identical guarantee.
///
/// Rung 0 ([`DseOptions::bound`]): before any SA runs, every candidate
/// gets a closed-form lower bound; the best-bounded `seed_count` are
/// evaluated first, their `survivors_needed`-th best achieved score
/// becomes the threshold, and candidates whose *bound* already exceeds
/// it are provably losers.
/// `Prune` skips their SA; `Report` still evaluates everything but
/// carries the identical plan and counters, so the [`DseReport`] is
/// byte-identical between the two modes and the winner is byte-identical
/// to `Off`.
pub fn run_dse_over(candidates: &[ArchConfig], dnns: &[Dnn], opts: &DseOptions) -> DseResult {
    assert!(!candidates.is_empty(), "no valid DSE candidates");
    let cost = CostModel::default();
    let n = candidates.len();

    let workers = opts.threads.clamp(1, n);
    let mut opts_inner = opts.clone();
    if workers > 1 && opts_inner.mapping.sa.threads == 0 {
        opts_inner.mapping.sa.threads = 1;
    }

    let mut bound_plan: Option<BoundPlan> = None;
    let mut records: Vec<DseRecord> = if opts.bound.active() {
        // Rung 0, bound pass: closed-form lower bound per candidate.
        let bounds: Vec<CandidateBound> = crate::pool::parallel_map_indexed(workers, n, |i| {
            bound_candidate(&candidates[i], dnns, &cost, opts)
        });
        // A non-monotone objective inverts bound comparisons, so every
        // candidate becomes a seed and nothing can be flagged.
        let n_seeds = if opts.objective.monotone() {
            seed_count(&opts.fidelity, n)
        } else {
            n
        };
        let seed = bound_seed_mask(&bounds, n_seeds);
        // Phase A: evaluate the best-bounded seeds to establish an
        // *achieved* incumbent threshold.
        let seed_idx: Vec<usize> = (0..n).filter(|&i| seed[i]).collect();
        let seed_records: Vec<DseRecord> = crate::pool::parallel_map_indexed(
            workers.min(seed_idx.len()).max(1),
            seed_idx.len(),
            |j| evaluate_candidate(&candidates[seed_idx[j]], dnns, &cost, &opts_inner),
        );
        // The threshold is the `survivors_needed`-th best achieved
        // seed score: a flagged candidate's achieved score is then
        // strictly worse than at least that many evaluated candidates,
        // so neither the winner nor any member of the achieved top-K
        // (the re-rank input) can ever be flagged.
        let mut achieved: Vec<f64> = seed_records.iter().map(|r| r.score).collect();
        achieved.sort_by(f64::total_cmp);
        let need = survivors_needed(&opts.fidelity).min(achieved.len());
        let threshold = if need == 0 {
            f64::INFINITY
        } else {
            achieved[need - 1]
        };
        // Strict >: a candidate whose bound merely ties the threshold is
        // kept, so the true winner (achieved <= threshold, hence bound
        // <= threshold) can never be flagged.
        let pruned: Vec<bool> = (0..n)
            .map(|i| !seed[i] && bounds[i].score > threshold)
            .collect();
        // Phase B: the rest. `Prune` skips the flagged candidates;
        // `Report` evaluates them anyway (same plan, same counters —
        // only the skipped work differs).
        let rest: Vec<usize> = (0..n)
            .filter(|&i| !(seed[i] || opts.bound.prunes() && pruned[i]))
            .collect();
        let rest_records: Vec<DseRecord> = if rest.is_empty() {
            Vec::new()
        } else {
            crate::pool::parallel_map_indexed(workers.min(rest.len()), rest.len(), |j| {
                evaluate_candidate(&candidates[rest[j]], dnns, &cost, &opts_inner)
            })
        };
        // Assemble in candidate order; flagged-and-skipped slots get a
        // bound-valued stand-in record.
        let mut slots: Vec<Option<DseRecord>> = (0..n).map(|_| None).collect();
        for (i, r) in seed_idx.into_iter().zip(seed_records) {
            slots[i] = Some(r);
        }
        for (i, r) in rest.into_iter().zip(rest_records) {
            slots[i] = Some(r);
        }
        let recs: Vec<DseRecord> = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let mut r = s.unwrap_or_else(|| pruned_record(&candidates[i], &cost, &bounds[i]));
                let gap = if r.pruned || bounds[i].score <= 0.0 {
                    None
                } else {
                    Some(r.score / bounds[i].score)
                };
                r.bound = Some(RecordBound {
                    score: bounds[i].score,
                    energy: bounds[i].energy,
                    delay: bounds[i].delay,
                    gap,
                });
                r
            })
            .collect();
        bound_plan = Some(BoundPlan {
            bounds,
            seed,
            pruned,
            threshold,
        });
        recs
    } else {
        crate::pool::parallel_map_indexed(workers, n, |i| {
            evaluate_candidate(&candidates[i], dnns, &cost, &opts_inner)
        })
    };

    // Pruned stand-ins carry bound scores strictly worse than the
    // achieved threshold (itself at least the winner's achieved score),
    // so masking them to infinity cannot move the minimum — it only
    // guarantees the fidelity top-K never touches a record without
    // per-DNN data.
    let scores: Vec<f64> = records
        .iter()
        .map(|r| if r.pruned { f64::INFINITY } else { r.score })
        .collect();
    let analytic_best = scores
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
        .expect("non-empty");

    // Fidelity stages (no-op under `FidelityPolicy::Analytic`): fluid
    // re-rank of the top-K analytic survivors, then optional packet
    // validation of the winner. The SA engine is deterministic, so the
    // `remap` closure reproduces the analytic pass's mappings exactly.
    let mcs_energies: Vec<(f64, f64)> = records.iter().map(|r| (r.mc, r.energy)).collect();
    let (best, report, rescores) = crate::fidelity::run_fidelity_stage(
        &opts.fidelity,
        opts.objective,
        &scores,
        &mcs_energies,
        analytic_best,
        opts.threads.max(1),
        dnns,
        |i| {
            let ev = Evaluator::new(&candidates[i]);
            let engine = MappingEngine::new(&ev);
            let mapped = dnns
                .iter()
                .map(|d| engine.map(d, opts.batch, &opts_inner.mapping))
                .collect();
            (ev, mapped)
        },
    );
    for (i, fr) in rescores {
        records[i].fluid = Some(fr);
    }
    let mut report = report;
    if let Some(plan) = &bound_plan {
        report.bound = Some(plan.stats(records[best].score, best));
    }
    DseResult {
        records,
        best,
        report,
    }
}

/// Builds a larger accelerator out of `factor` times the computing
/// chiplets of `base` (the chiplet-reuse construction of Sec. VII-B).
/// The chiplet itself — cores per chiplet, MACs, GLB, NoC/D2D bandwidth —
/// is unchanged; the chiplet grid is re-arranged near-square and the
/// DRAM bandwidth scales with compute. Returns `None` if the base cannot
/// be tiled by that factor.
pub fn scale_arch(base: &ArchConfig, factor: u32) -> Option<ArchConfig> {
    if factor == 0 {
        return None;
    }
    let (cdx, cdy) = base.chiplet_dims();
    let total_chiplets = base.n_chiplets() * factor;
    let (gx, gy) = arrange_cores(total_chiplets);
    ArchConfig::builder()
        .cores(gx * cdx, gy * cdy)
        .cuts(gx, gy)
        .noc_bw(base.noc_bw())
        .d2d_bw(base.d2d_bw())
        .dram_bw(base.dram_bw() * factor as f64)
        .dram_count(base.dram_count())
        .glb_kb(base.glb_bytes() / 1024)
        .macs_per_core(base.macs_per_core())
        .freq_ghz(base.freq_ghz())
        .topology(if factor == 1 {
            base.topology()
        } else {
            Topology::Mesh
        })
        .build()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::SaOptions;
    use gemini_model::zoo;

    #[test]
    fn objective_presets() {
        let o = Objective::mc_e_d();
        assert_eq!(o.score(2.0, 3.0, 4.0), 24.0);
        assert_eq!(Objective::d_only().score(2.0, 3.0, 4.0), 4.0);
        assert_eq!(Objective::e_d().score(2.0, 3.0, 4.0), 12.0);
    }

    #[test]
    fn table1_grid_matches_paper_examples() {
        // Regression for the doc-comment cases: 36 cores -> 6x6,
        // 18 -> 6x3, 72 -> 9x8.
        let spec = DseSpec::table1(72.0);
        assert_eq!(spec.grid_for(1024), Some((6, 6)));
        assert_eq!(spec.grid_for(2048), Some((6, 3)));
        assert_eq!(spec.grid_for(4096), Some((3, 3)));
        assert_eq!(spec.grid_for(512), Some((9, 8)));
    }

    #[test]
    fn squareness_key_is_symmetric_and_prefers_square() {
        // The old asymmetric x/y aspect key scored 3x6 at 500 — *below*
        // (i.e. better than) the 6x6 square's 1000. The symmetric key
        // must rank the square strictly best and score transposes
        // identically.
        assert_eq!(squareness_milli(3, 6), squareness_milli(6, 3));
        assert_eq!(squareness_milli(3, 6), 2000);
        assert_eq!(squareness_milli(6, 6), 1000);
        assert!(squareness_milli(6, 6) < squareness_milli(3, 6));
        assert!(squareness_milli(6, 6) < squareness_milli(6, 3));
        assert_eq!(squareness_milli(9, 8), squareness_milli(8, 9));
        assert_eq!(squareness_milli(9, 8), 1125);
        // Degenerate zero dimensions are guarded, not divided by.
        assert_eq!(squareness_milli(0, 4), 4000);
    }

    #[test]
    fn grid_tie_break_prefers_square_then_count() {
        // With a single trivial cut every candidate count admits the
        // same number of (XCut, YCut) pairs, so the squareness tie-break
        // decides: the window 35..=40 contains 35 -> 7x5, 36 -> 6x6,
        // 40 -> 8x5, and the 6x6 square must win.
        let spec = DseSpec {
            cuts: vec![1],
            ..DseSpec::table1(71.68)
        };
        assert_eq!(spec.grid_for(1024), Some((6, 6)));
    }

    #[test]
    fn candidates_respect_cut_divisibility() {
        let spec = DseSpec::table1(72.0);
        for a in spec.candidates() {
            assert_eq!(a.x_cores() % a.xcut(), 0);
            assert_eq!(a.y_cores() % a.ycut(), 0);
            let tops = a.tops();
            assert!(
                (50.0..100.0).contains(&tops),
                "{} has {tops} TOPS",
                a.paper_tuple()
            );
        }
    }

    #[test]
    fn candidate_count_is_substantial() {
        let spec = DseSpec::table1(72.0);
        let n = spec.candidates().len();
        // 5 MAC choices x cut combos x 3 DRAM x 5 NoC x 3 D2D x 6 GLB:
        // thousands of points.
        assert!(n > 1000, "only {n} candidates");
    }

    #[test]
    fn mini_dse_finds_a_best() {
        let dnns = vec![zoo::two_conv_example()];
        // A tiny explicit candidate list keeps this test fast.
        let candidates = vec![
            gemini_arch::presets::simba_s_arch(),
            gemini_arch::presets::g_arch_72(),
        ];
        let opts = DseOptions {
            batch: 2,
            mapping: MappingOptions {
                sa: SaOptions {
                    iters: 40,
                    seed: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
            threads: 2,
            ..Default::default()
        };
        let res = run_dse_over(&candidates, &dnns, &opts);
        assert_eq!(res.records.len(), 2);
        assert!(res.best < 2);
        let best = res.best_record();
        assert!(best.score > 0.0);
        assert!(best.mc > 0.0);
        // Re-ranking under D-only must pick the lower-delay record.
        let d_best = res.best_under(Objective::d_only());
        assert!(res.records.iter().all(|r| d_best.delay <= r.delay));
    }

    #[test]
    fn rerank_policy_rescored_records_and_report() {
        let dnns = vec![zoo::two_conv_example()];
        let candidates = vec![
            gemini_arch::presets::simba_s_arch(),
            gemini_arch::presets::g_arch_72(),
        ];
        let opts = DseOptions {
            batch: 2,
            mapping: MappingOptions {
                sa: SaOptions {
                    iters: 40,
                    seed: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
            threads: 2,
            fidelity: FidelityPolicy::rerank(2),
            ..Default::default()
        };
        let res = run_dse_over(&candidates, &dnns, &opts);
        assert_eq!(res.report.reranked.len(), 2);
        assert_eq!(res.records.iter().filter(|r| r.fluid.is_some()).count(), 2);
        assert!(!res.report.winner_groups.is_empty());
        // Rung 1 never runs the packet simulator.
        assert!(res
            .report
            .winner_groups
            .iter()
            .all(|g| g.packet_s.is_none()));
        for r in &res.records {
            let f = r.fluid.as_ref().expect("k = 2 re-scores both");
            // The congestion correction is monotone: fluid-referenced
            // delay and score never beat the analytic ones.
            assert!(f.delay >= r.delay * (1.0 - 1e-12));
            assert!(f.score >= r.score * (1.0 - 1e-12));
            assert!(f.worst_fluid_vs_analytic >= 1.0);
        }
        // The re-ranked winner minimizes the fluid score.
        let best_score = res.records[res.best].fluid.as_ref().unwrap().score;
        for r in &res.records {
            assert!(best_score <= r.fluid.as_ref().unwrap().score * (1.0 + 1e-12));
        }
        // Rung 1 never suggests a calibration: the fluid model has no
        // queueing, so a fluid-referenced fit would spuriously advise
        // stripping the surcharge. Only rung 2 (packet) calibrates.
        assert!(res.report.suggested_congestion_weight.is_none());
    }

    #[test]
    fn scale_arch_tiles_chiplets() {
        let base = gemini_arch::presets::g_arch_72(); // 2 chiplets of 3x6
        let scaled = scale_arch(&base, 4).unwrap(); // 8 chiplets
        assert_eq!(scaled.n_chiplets(), 8);
        assert_eq!(scaled.chiplet_dims(), base.chiplet_dims());
        assert_eq!(scaled.macs_per_core(), base.macs_per_core());
        assert!((scaled.tops() - 4.0 * base.tops()).abs() < 1.0);
        assert!((scaled.dram_bw() - 4.0 * base.dram_bw()).abs() < 1e-9);
    }

    #[test]
    fn scale_arch_identity() {
        let base = gemini_arch::presets::g_arch_72();
        let same = scale_arch(&base, 1).unwrap();
        assert_eq!(same.n_chiplets(), base.n_chiplets());
        assert_eq!(same.n_cores(), base.n_cores());
    }
}
