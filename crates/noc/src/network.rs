//! Link enumeration and routing.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use gemini_arch::{ArchConfig, Coord, CoreId, Topology};

/// A node of the interconnect: a core router or a DRAM-controller port
/// inside an IO chiplet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// Router of the core at the given coordinate.
    Core(Coord),
    /// Port `slot` of DRAM controller `dram`, adjacent to edge core `at`.
    DramPort {
        /// DRAM stack index.
        dram: u32,
        /// The edge-core coordinate the port attaches to.
        at: Coord,
    },
}

/// Identifier of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The index as `usize`.
    pub fn idx(&self) -> usize {
        self.0 as usize
    }
}

/// Physical nature of a link, which determines its bandwidth and energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// On-chip NoC link.
    Noc,
    /// Die-to-die link (crosses a chiplet boundary).
    D2d,
    /// DRAM controller to edge router (read injection).
    DramInj(u32),
    /// Edge router to DRAM controller (write ejection).
    DramEj(u32),
}

impl LinkKind {
    /// Whether this link is a D2D interface.
    pub fn is_d2d(&self) -> bool {
        matches!(self, LinkKind::D2d)
    }
}

/// A directed link of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Physical kind.
    pub kind: LinkKind,
    /// Bandwidth in GB/s.
    pub bw: f64,
}

/// The interconnect of one architecture: all links plus routing.
#[derive(Debug, Clone)]
pub struct Network {
    arch: ArchConfig,
    links: Vec<Link>,
    /// Right-going and left-going horizontal mesh links, indexed by
    /// (x, y) of the *source*: `h_links[dir][y * x_cores + x]`.
    h_right: Vec<u32>,
    h_left: Vec<u32>,
    v_down: Vec<u32>,
    v_up: Vec<u32>,
    /// Wrap links for the torus: per row (right-to-0 and back), per col.
    wrap_h: HashMap<(u32, bool), u32>,
    wrap_v: HashMap<(u32, bool), u32>,
    /// Injection/ejection link ids per DRAM per port.
    dram_inj: Vec<Vec<u32>>,
    dram_ej: Vec<Vec<u32>>,
    /// DRAM port coordinates, cached from the arch.
    dram_ports: Vec<Vec<Coord>>,
}

const NO_LINK: u32 = u32::MAX;

impl Network {
    /// Builds the interconnect for an architecture.
    pub fn new(arch: &ArchConfig) -> Self {
        let x = arch.x_cores();
        let y = arch.y_cores();
        let n = (x * y) as usize;
        let mut links = Vec::new();
        let mut h_right = vec![NO_LINK; n];
        let mut h_left = vec![NO_LINK; n];
        let mut v_down = vec![NO_LINK; n];
        let mut v_up = vec![NO_LINK; n];
        let mut wrap_h = HashMap::new();
        let mut wrap_v = HashMap::new();

        let core = |cx: u32, cy: u32| NodeId::Core(Coord::new(cx as u16, cy as u16));
        let push = |links: &mut Vec<Link>, from, to, kind, bw| -> u32 {
            let id = links.len() as u32;
            links.push(Link { from, to, kind, bw });
            id
        };
        let hkind = |cx: u32| {
            if arch.is_d2d_h(cx) {
                LinkKind::D2d
            } else {
                LinkKind::Noc
            }
        };
        let vkind = |cy: u32| {
            if arch.is_d2d_v(cy) {
                LinkKind::D2d
            } else {
                LinkKind::Noc
            }
        };
        let bw_of = |k: LinkKind| match k {
            LinkKind::D2d => arch.d2d_bw(),
            _ => arch.noc_bw(),
        };

        for cy in 0..y {
            for cx in 0..x {
                let i = (cy * x + cx) as usize;
                if cx + 1 < x {
                    let k = hkind(cx);
                    h_right[i] = push(&mut links, core(cx, cy), core(cx + 1, cy), k, bw_of(k));
                    h_left[(cy * x + cx + 1) as usize] =
                        push(&mut links, core(cx + 1, cy), core(cx, cy), k, bw_of(k));
                }
                if cy + 1 < y {
                    let k = vkind(cy);
                    v_down[i] = push(&mut links, core(cx, cy), core(cx, cy + 1), k, bw_of(k));
                    v_up[((cy + 1) * x + cx) as usize] =
                        push(&mut links, core(cx, cy + 1), core(cx, cy), k, bw_of(k));
                }
            }
        }

        if arch.topology() == Topology::FoldedTorus && x > 1 {
            for cy in 0..y {
                let k = if arch.xcut() > 1 {
                    LinkKind::D2d
                } else {
                    LinkKind::Noc
                };
                let f = push(&mut links, core(x - 1, cy), core(0, cy), k, bw_of(k));
                let b = push(&mut links, core(0, cy), core(x - 1, cy), k, bw_of(k));
                wrap_h.insert((cy, true), f);
                wrap_h.insert((cy, false), b);
            }
        }
        if arch.topology() == Topology::FoldedTorus && y > 1 {
            for cx in 0..x {
                let k = if arch.ycut() > 1 {
                    LinkKind::D2d
                } else {
                    LinkKind::Noc
                };
                let f = push(&mut links, core(cx, y - 1), core(cx, 0), k, bw_of(k));
                let b = push(&mut links, core(cx, 0), core(cx, y - 1), k, bw_of(k));
                wrap_v.insert((cx, true), f);
                wrap_v.insert((cx, false), b);
            }
        }

        let mut dram_inj = Vec::new();
        let mut dram_ej = Vec::new();
        let mut dram_ports = Vec::new();
        for d in 0..arch.dram_count() {
            let ports = arch.dram_ports(d);
            let mut inj = Vec::new();
            let mut ej = Vec::new();
            for &p in &ports {
                let pn = NodeId::DramPort { dram: d, at: p };
                inj.push(push(
                    &mut links,
                    pn,
                    NodeId::Core(p),
                    LinkKind::DramInj(d),
                    arch.noc_bw(),
                ));
                ej.push(push(
                    &mut links,
                    NodeId::Core(p),
                    pn,
                    LinkKind::DramEj(d),
                    arch.noc_bw(),
                ));
            }
            dram_inj.push(inj);
            dram_ej.push(ej);
            dram_ports.push(ports);
        }

        Self {
            arch: arch.clone(),
            links,
            h_right,
            h_left,
            v_down,
            v_up,
            wrap_h,
            wrap_v,
            dram_inj,
            dram_ej,
            dram_ports,
        }
    }

    /// The architecture this network belongs to.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Number of directed links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Link metadata.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.idx()]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    fn idx_of(&self, cx: u32, cy: u32) -> usize {
        (cy * self.arch.x_cores() + cx) as usize
    }

    /// Appends the XY (mesh) or dimension-order (torus) route from one
    /// core to another onto `out`. Routing is X-first, matching the
    /// paper's Fig.-9 discussion of XY routing.
    pub fn route_cores(&self, from: CoreId, to: CoreId, out: &mut Vec<LinkId>) {
        let a = self.arch.coord(from);
        let b = self.arch.coord(to);
        self.route_coords(a, b, out);
    }

    fn route_coords(&self, a: Coord, b: Coord, out: &mut Vec<LinkId>) {
        let torus = self.arch.topology() == Topology::FoldedTorus;
        let x_len = self.arch.x_cores();
        let y_len = self.arch.y_cores();
        // X leg.
        let (mut cx, cy) = (a.x as u32, a.y as u32);
        let tx = b.x as u32;
        while cx != tx {
            let fwd_dist = (tx + x_len - cx) % x_len;
            let bwd_dist = (cx + x_len - tx) % x_len;
            let go_fwd = if torus { fwd_dist <= bwd_dist } else { cx < tx };
            if go_fwd {
                if cx + 1 == x_len {
                    out.push(LinkId(self.wrap_h[&(cy, true)]));
                    cx = 0;
                } else {
                    out.push(LinkId(self.h_right[self.idx_of(cx, cy)]));
                    cx += 1;
                }
            } else if cx == 0 {
                out.push(LinkId(self.wrap_h[&(cy, false)]));
                cx = x_len - 1;
            } else {
                out.push(LinkId(self.h_left[self.idx_of(cx, cy)]));
                cx -= 1;
            }
        }
        // Y leg.
        let mut cyy = cy;
        let ty = b.y as u32;
        while cyy != ty {
            let fwd_dist = (ty + y_len - cyy) % y_len;
            let bwd_dist = (cyy + y_len - ty) % y_len;
            let go_fwd = if torus {
                fwd_dist <= bwd_dist
            } else {
                cyy < ty
            };
            if go_fwd {
                if cyy + 1 == y_len {
                    out.push(LinkId(self.wrap_v[&(cx, true)]));
                    cyy = 0;
                } else {
                    out.push(LinkId(self.v_down[self.idx_of(cx, cyy)]));
                    cyy += 1;
                }
            } else if cyy == 0 {
                out.push(LinkId(self.wrap_v[&(cx, false)]));
                cyy = y_len - 1;
            } else {
                out.push(LinkId(self.v_up[self.idx_of(cx, cyy)]));
                cyy -= 1;
            }
        }
    }

    /// Coordinates of the ports of DRAM `d`.
    pub fn dram_port_coords(&self, d: u32) -> &[Coord] {
        &self.dram_ports[d as usize]
    }

    /// Visits each port of DRAM `d` with the read path (DRAM -> core)
    /// into `scratch`; the callback receives the per-port path. The
    /// caller divides volume across ports, matching the template's
    /// multi-router DRAM attachment.
    pub fn for_each_dram_read_path(
        &self,
        d: u32,
        to: CoreId,
        scratch: &mut Vec<LinkId>,
        mut f: impl FnMut(&[LinkId]),
    ) {
        let ports = &self.dram_ports[d as usize];
        for (i, &p) in ports.iter().enumerate() {
            scratch.clear();
            scratch.push(LinkId(self.dram_inj[d as usize][i]));
            self.route_coords(p, self.arch.coord(to), scratch);
            f(scratch);
        }
    }

    /// Like [`Self::for_each_dram_read_path`] but for writes
    /// (core -> DRAM).
    pub fn for_each_dram_write_path(
        &self,
        from: CoreId,
        d: u32,
        scratch: &mut Vec<LinkId>,
        mut f: impl FnMut(&[LinkId]),
    ) {
        let ports = &self.dram_ports[d as usize];
        for (i, &p) in ports.iter().enumerate() {
            scratch.clear();
            self.route_coords(self.arch.coord(from), p, scratch);
            scratch.push(LinkId(self.dram_ej[d as usize][i]));
            f(scratch);
        }
    }

    /// Multicast tree from one core to many: the union of the unicast XY
    /// paths with each link counted once. Returns the deduplicated link
    /// set in `out`.
    pub fn multicast_cores(&self, from: CoreId, tos: &[CoreId], out: &mut Vec<LinkId>) {
        out.clear();
        let mut seen = std::collections::HashSet::new();
        let mut path = Vec::new();
        for &t in tos {
            if t == from {
                continue;
            }
            path.clear();
            self.route_cores(from, t, &mut path);
            for &l in &path {
                if seen.insert(l) {
                    out.push(l);
                }
            }
        }
    }

    /// Multicast tree from one DRAM port set to many cores (per-port
    /// trees; callback gets each port's deduplicated tree so the caller
    /// can divide volume by port count).
    pub fn multicast_from_dram(
        &self,
        d: u32,
        tos: &[CoreId],
        out: &mut Vec<LinkId>,
        mut f: impl FnMut(&[LinkId]),
    ) {
        let ports: Vec<Coord> = self.dram_ports[d as usize].clone();
        let mut seen = std::collections::HashSet::new();
        let mut path = Vec::new();
        for (i, &p) in ports.iter().enumerate() {
            out.clear();
            seen.clear();
            let inj = LinkId(self.dram_inj[d as usize][i]);
            seen.insert(inj);
            out.push(inj);
            for &t in tos {
                path.clear();
                self.route_coords(p, self.arch.coord(t), &mut path);
                for &l in &path {
                    if seen.insert(l) {
                        out.push(l);
                    }
                }
            }
            f(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_arch::presets;

    fn mesh() -> (ArchConfig, Network) {
        let a = presets::g_arch_72();
        let n = Network::new(&a);
        (a, n)
    }

    #[test]
    fn link_count_mesh() {
        let (a, n) = mesh();
        let x = a.x_cores();
        let y = a.y_cores();
        // Directed mesh links + 2 DRAMs x 6 ports x (inj+ej).
        let mesh_links = 2 * (x - 1) * y + 2 * (y - 1) * x;
        let dram_links = 2 * 2 * 6;
        assert_eq!(n.n_links() as u32, mesh_links + dram_links);
    }

    #[test]
    fn xy_route_shape() {
        let (a, n) = mesh();
        let mut p = Vec::new();
        n.route_cores(a.core_at(1, 1), a.core_at(4, 3), &mut p);
        assert_eq!(p.len(), 3 + 2);
        // X leg first: the first three links are horizontal.
        for l in &p[..3] {
            let link = n.link(*l);
            if let (NodeId::Core(f), NodeId::Core(t)) = (link.from, link.to) {
                assert_eq!(f.y, t.y, "X leg must stay in the row");
            } else {
                panic!("expected core-to-core link");
            }
        }
    }

    #[test]
    fn route_self_is_empty() {
        let (a, n) = mesh();
        let mut p = Vec::new();
        n.route_cores(a.core_at(2, 2), a.core_at(2, 2), &mut p);
        assert!(p.is_empty());
    }

    #[test]
    fn d2d_links_on_cut_boundary() {
        // g_arch_72 has xcut=2 on a 6-wide grid: links between columns 2
        // and 3 are D2D.
        let (a, n) = mesh();
        let mut p = Vec::new();
        n.route_cores(a.core_at(2, 0), a.core_at(3, 0), &mut p);
        assert_eq!(p.len(), 1);
        assert!(n.link(p[0]).kind.is_d2d());
        assert_eq!(n.link(p[0]).bw, a.d2d_bw());
        // Vertical links never cross (ycut=1).
        p.clear();
        n.route_cores(a.core_at(0, 2), a.core_at(0, 3), &mut p);
        assert_eq!(n.link(p[0]).kind, LinkKind::Noc);
    }

    #[test]
    fn torus_wraps_shorter_way() {
        let a = presets::t_arch(); // 12x10 folded torus
        let n = Network::new(&a);
        let mut p = Vec::new();
        // From x=0 to x=11: wrap (1 hop) beats 11 mesh hops.
        n.route_cores(a.core_at(0, 0), a.core_at(11, 0), &mut p);
        assert_eq!(p.len(), 1);
        // From x=0 to x=5: 5 hops, no wrap.
        p.clear();
        n.route_cores(a.core_at(0, 0), a.core_at(5, 0), &mut p);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn monolithic_mesh_has_no_d2d() {
        let a = ArchConfig::builder()
            .cores(4, 4)
            .cuts(1, 1)
            .build()
            .unwrap();
        let n = Network::new(&a);
        assert!(n.links().iter().all(|l| !l.kind.is_d2d()));
    }

    #[test]
    fn dram_read_paths_touch_all_ports() {
        let (a, n) = mesh();
        let mut scratch = Vec::new();
        let mut count = 0;
        n.for_each_dram_read_path(0, a.core_at(3, 3), &mut scratch, |path| {
            count += 1;
            assert!(matches!(n.link(path[0]).kind, LinkKind::DramInj(0)));
        });
        assert_eq!(count, 6, "DRAM 0 has 6 ports on the west edge");
    }

    #[test]
    fn dram_write_paths_end_in_ejection() {
        let (a, n) = mesh();
        let mut scratch = Vec::new();
        n.for_each_dram_write_path(a.core_at(3, 3), 1, &mut scratch, |path| {
            assert!(matches!(
                n.link(*path.last().unwrap()).kind,
                LinkKind::DramEj(1)
            ));
        });
    }

    #[test]
    fn multicast_dedups_shared_prefix() {
        let (a, n) = mesh();
        let mut tree = Vec::new();
        // Two destinations in the same row share the horizontal prefix.
        n.multicast_cores(
            a.core_at(0, 0),
            &[a.core_at(3, 0), a.core_at(3, 1)],
            &mut tree,
        );
        // Unicast would be 3 + 4 = 7 links; the tree shares 3.
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn multicast_excludes_self() {
        let (a, n) = mesh();
        let mut tree = Vec::new();
        n.multicast_cores(a.core_at(2, 2), &[a.core_at(2, 2)], &mut tree);
        assert!(tree.is_empty());
    }
}
