//! Per-link traffic accumulation.

use serde::{Deserialize, Serialize};

use crate::network::{LinkId, LinkKind, Network};

/// Bytes carried by every link during one pipeline stage.
///
/// The evaluator builds one `TrafficMap` per layer group per sub-batch;
/// the busiest link determines the network contribution to the stage
/// time, and per-kind sums feed the energy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMap {
    bytes: Vec<f64>,
}

impl TrafficMap {
    /// An empty traffic map for the given network.
    pub fn new(net: &Network) -> Self {
        Self {
            bytes: vec![0.0; net.n_links()],
        }
    }

    /// Clears all accumulated traffic.
    pub fn clear(&mut self) {
        self.bytes.iter_mut().for_each(|b| *b = 0.0);
    }

    /// Adds `bytes` to one link.
    pub fn add(&mut self, link: LinkId, bytes: f64) {
        self.bytes[link.idx()] += bytes;
    }

    /// Adds `bytes` to every link of a path (or multicast tree).
    pub fn add_path(&mut self, path: &[LinkId], bytes: f64) {
        for l in path {
            self.bytes[l.idx()] += bytes;
        }
    }

    /// Bytes on one link.
    pub fn bytes_on(&self, link: LinkId) -> f64 {
        self.bytes[link.idx()]
    }

    /// Iterator over `(LinkId, bytes)` for loaded links.
    pub fn iter_loaded(&self) -> impl Iterator<Item = (LinkId, f64)> + '_ {
        self.bytes
            .iter()
            .enumerate()
            .filter(|(_, b)| **b > 0.0)
            .map(|(i, b)| (LinkId(i as u32), *b))
    }

    /// The transfer time (seconds) of the slowest link:
    /// `max(bytes / bw)`. Bandwidths are GB/s, so bytes are divided by
    /// `bw * 1e9`.
    pub fn bottleneck_time(&self, net: &Network) -> f64 {
        let mut worst: f64 = 0.0;
        for (i, &b) in self.bytes.iter().enumerate() {
            if b > 0.0 {
                worst = worst.max(b / (net.link(LinkId(i as u32)).bw * 1e9));
            }
        }
        worst
    }

    /// The most loaded link and its time, if any traffic exists.
    pub fn busiest(&self, net: &Network) -> Option<(LinkId, f64)> {
        let mut best: Option<(LinkId, f64)> = None;
        for (i, &b) in self.bytes.iter().enumerate() {
            if b > 0.0 {
                let t = b / (net.link(LinkId(i as u32)).bw * 1e9);
                if best.map_or(true, |(_, bt)| t > bt) {
                    best = Some((LinkId(i as u32), t));
                }
            }
        }
        best
    }

    /// Total byte-hops (sum of bytes over all links). The quantity whose
    /// 34.2% reduction the paper reports for Fig. 9.
    pub fn total_hop_bytes(&self) -> f64 {
        self.bytes.iter().sum()
    }

    /// Mean per-link transfer time across *all* links (idle links count
    /// as zero). Used by the evaluator as a congestion surcharge: a
    /// mapping that moves the same bytes over longer paths raises
    /// average utilization and pays queueing delay even when no single
    /// link saturates.
    pub fn mean_link_time(&self, net: &Network) -> f64 {
        if self.bytes.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .bytes
            .iter()
            .enumerate()
            .filter(|(_, b)| **b > 0.0)
            .map(|(i, b)| b / (net.link(LinkId(i as u32)).bw * 1e9))
            .sum();
        total / self.bytes.len() as f64
    }

    /// Byte-hops on D2D links only.
    pub fn d2d_hop_bytes(&self, net: &Network) -> f64 {
        self.sum_kind(net, |k| k.is_d2d())
    }

    /// Byte-hops on on-chip NoC links only (incl. DRAM port links, which
    /// are on-chip wiring inside the IO die).
    pub fn noc_hop_bytes(&self, net: &Network) -> f64 {
        self.sum_kind(net, |k| !k.is_d2d())
    }

    fn sum_kind(&self, net: &Network, pred: impl Fn(LinkKind) -> bool) -> f64 {
        self.bytes
            .iter()
            .enumerate()
            .filter(|(i, _)| pred(net.link(LinkId(*i as u32)).kind))
            .map(|(_, b)| b)
            .sum()
    }

    /// Gini coefficient of per-link transfer *times* across all links
    /// (idle links count as zero). 0 = perfectly even utilization,
    /// 1 = all traffic on one link. Quantifies the paper's Fig.-9
    /// observation that Gemini's schemes leave "overall network traffic
    /// more evenly distributed".
    pub fn utilization_gini(&self, net: &Network) -> f64 {
        // Degenerate inputs (zero-bandwidth links, infinite byte loads)
        // yield non-finite transfer times; those entries are excluded so
        // the metric stays defined instead of propagating NaN or
        // panicking in the sort below.
        let mut times: Vec<f64> = self
            .bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if b > 0.0 {
                    b / (net.link(LinkId(i as u32)).bw * 1e9)
                } else {
                    0.0
                }
            })
            .filter(|t| t.is_finite())
            .collect();
        let n = times.len();
        let total: f64 = times.iter().sum();
        if n == 0 || total <= 0.0 {
            return 0.0;
        }
        times.sort_by(f64::total_cmp);
        // G = 2*sum(i*x_i)/(n*sum(x)) - (n+1)/n with 1-based ranks.
        let weighted: f64 = times
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x)
            .sum();
        (2.0 * weighted / (n as f64 * total) - (n as f64 + 1.0) / n as f64).max(0.0)
    }

    /// Peak-to-mean ratio of transfer times over *loaded* links (1.0 =
    /// perfectly flat; large values mean a few "red" hotspot links carry
    /// the traffic). The balance metric behind the paper's Fig.-9
    /// observation that Gemini's red links disappear: unlike
    /// [`TrafficMap::utilization_gini`], it is insensitive to how many
    /// links the scheme leaves idle.
    pub fn peak_to_mean(&self, net: &Network) -> f64 {
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for (i, &b) in self.bytes.iter().enumerate() {
            if b > 0.0 {
                let t = b / (net.link(LinkId(i as u32)).bw * 1e9);
                max = max.max(t);
                sum += t;
                n += 1;
            }
        }
        if n == 0 {
            return 1.0;
        }
        max / (sum / n as f64)
    }

    /// Histogram of per-link loads: `bins` equal-width buckets between 0
    /// and the maximum load; bucket 0 counts idle links.
    pub fn load_histogram(&self, bins: usize) -> Vec<usize> {
        assert!(bins >= 2, "need at least an idle and a loaded bucket");
        let max = self.bytes.iter().copied().fold(0.0f64, f64::max);
        let mut hist = vec![0usize; bins];
        for &b in &self.bytes {
            if b <= 0.0 || max <= 0.0 {
                hist[0] += 1;
            } else {
                let i = ((b / max) * (bins - 1) as f64).ceil() as usize;
                hist[i.min(bins - 1)] += 1;
            }
        }
        hist
    }

    /// Adds another traffic map (same network) into this one, scaled.
    pub fn merge_scaled(&mut self, other: &TrafficMap, scale: f64) {
        assert_eq!(
            self.bytes.len(),
            other.bytes.len(),
            "traffic maps from different networks"
        );
        for (a, b) in self.bytes.iter_mut().zip(&other.bytes) {
            *a += b * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_arch::presets;

    #[test]
    fn bottleneck_prefers_slow_d2d() {
        let arch = presets::g_arch_72(); // NoC 32, D2D 16
        let net = Network::new(&arch);
        let mut t = TrafficMap::new(&net);
        let mut p = Vec::new();
        // Crosses the chiplet boundary between columns 2 and 3.
        net.route_cores(arch.core_at(0, 0), arch.core_at(5, 0), &mut p);
        t.add_path(&p, 1e9);
        let (busiest, time) = t.busiest(&net).unwrap();
        assert!(net.link(busiest).kind.is_d2d());
        assert!((time - 1.0 / 16.0).abs() < 1e-9);
        assert!((t.bottleneck_time(&net) - time).abs() < 1e-12);
    }

    #[test]
    fn hop_byte_accounting() {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        let mut t = TrafficMap::new(&net);
        let mut p = Vec::new();
        net.route_cores(arch.core_at(0, 0), arch.core_at(5, 0), &mut p);
        t.add_path(&p, 100.0);
        assert_eq!(t.total_hop_bytes(), 500.0);
        assert_eq!(t.d2d_hop_bytes(&net), 100.0);
        assert_eq!(t.noc_hop_bytes(&net), 400.0);
    }

    #[test]
    fn merge_scaled_accumulates() {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        let mut a = TrafficMap::new(&net);
        let mut b = TrafficMap::new(&net);
        b.add(crate::network::LinkId(0), 10.0);
        a.merge_scaled(&b, 3.0);
        a.merge_scaled(&b, 1.0);
        assert_eq!(a.bytes_on(crate::network::LinkId(0)), 40.0);
    }

    #[test]
    fn clear_resets() {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        let mut t = TrafficMap::new(&net);
        t.add(crate::network::LinkId(3), 5.0);
        t.clear();
        assert_eq!(t.total_hop_bytes(), 0.0);
        assert!(t.busiest(&net).is_none());
    }

    #[test]
    fn iter_loaded_skips_idle_links() {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        let mut t = TrafficMap::new(&net);
        t.add(crate::network::LinkId(7), 42.0);
        let loaded: Vec<_> = t.iter_loaded().collect();
        assert_eq!(loaded, vec![(crate::network::LinkId(7), 42.0)]);
    }

    #[test]
    fn mean_link_time_averages_over_all_links() {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        let mut t = TrafficMap::new(&net);
        assert_eq!(t.mean_link_time(&net), 0.0);
        // One NoC link with 32 GB: 1 second on that link, averaged over
        // every link of the network.
        let mut p = Vec::new();
        net.route_cores(arch.core_at(0, 0), arch.core_at(1, 0), &mut p);
        t.add_path(&p, 32e9);
        let expected = 1.0 / net.n_links() as f64;
        assert!((t.mean_link_time(&net) - expected).abs() < 1e-12);
    }

    #[test]
    fn gini_extremes() {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        // All traffic on one link: Gini near 1.
        let mut one = TrafficMap::new(&net);
        one.add(crate::network::LinkId(0), 1e9);
        assert!(one.utilization_gini(&net) > 0.95);
        // Equal traffic on every link of equal bandwidth: Gini 0. Use
        // only NoC links so bandwidths match.
        let mut even = TrafficMap::new(&net);
        for i in 0..net.n_links() {
            let l = crate::network::LinkId(i as u32);
            even.add(l, net.link(l).bw * 1e9);
        }
        assert!(even.utilization_gini(&net) < 1e-9);
        // Empty map: 0 by convention.
        let empty = TrafficMap::new(&net);
        assert_eq!(empty.utilization_gini(&net), 0.0);
    }

    #[test]
    fn gini_guards_non_finite_times() {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        let mut t = TrafficMap::new(&net);
        t.add(crate::network::LinkId(0), 1e9);
        t.add(crate::network::LinkId(1), 2e9);
        let finite = t.utilization_gini(&net);
        assert!(finite > 0.0 && finite.is_finite());
        // An infinite load (degenerate architecture or overflowed
        // volume) must not poison the metric: the non-finite entry is
        // excluded and the result stays defined and close to the
        // finite-only value (one fewer link in the denominator).
        t.add(crate::network::LinkId(2), f64::INFINITY);
        let guarded = t.utilization_gini(&net);
        assert!(guarded.is_finite(), "gini must stay defined");
        assert!((0.0..=1.0).contains(&guarded));
        assert!((guarded - finite).abs() < 0.05);
    }

    #[test]
    fn gini_orders_spread_vs_concentrated() {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        let mut concentrated = TrafficMap::new(&net);
        let mut spread = TrafficMap::new(&net);
        let mut p = Vec::new();
        net.route_cores(arch.core_at(0, 0), arch.core_at(5, 0), &mut p);
        concentrated.add_path(&p, 6e9);
        for y in 0..6u32 {
            p.clear();
            net.route_cores(arch.core_at(0, y), arch.core_at(5, y), &mut p);
            spread.add_path(&p, 1e9);
        }
        assert!(
            spread.utilization_gini(&net) < concentrated.utilization_gini(&net),
            "spreading the same bytes over rows must lower the Gini"
        );
    }

    #[test]
    fn peak_to_mean_detects_hotspots() {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        // Flat: every loaded link equal -> ratio 1. A column route on
        // the (2,1)-cut fabric never crosses the chiplet boundary, so
        // all five links share the NoC bandwidth.
        let mut flat = TrafficMap::new(&net);
        let mut p = Vec::new();
        net.route_cores(arch.core_at(0, 0), arch.core_at(0, 5), &mut p);
        assert!(p.iter().all(|&l| !net.link(l).kind.is_d2d()));
        flat.add_path(&p, 1e9);
        assert!((flat.peak_to_mean(&net) - 1.0).abs() < 1e-9);
        // Hotspot: one link gets 10x the rest -> peak 10 over mean 2.8.
        let mut hot = flat.clone();
        hot.add(p[0], 9e9);
        assert!(hot.peak_to_mean(&net) > 2.0);
        // Empty: 1 by convention.
        assert_eq!(TrafficMap::new(&net).peak_to_mean(&net), 1.0);
    }

    #[test]
    fn histogram_counts_all_links() {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        let mut t = TrafficMap::new(&net);
        t.add(crate::network::LinkId(0), 100.0);
        t.add(crate::network::LinkId(1), 50.0);
        let h = t.load_histogram(4);
        assert_eq!(h.iter().sum::<usize>(), net.n_links());
        assert_eq!(h[3], 1, "the max-load link lands in the top bucket");
        assert_eq!(h[2], 1, "the half-load link lands in the middle");
        assert_eq!(h[0], net.n_links() - 2, "everything else is idle");
    }

    #[test]
    fn mean_link_time_rewards_shorter_paths() {
        // Same bytes over a longer path => higher mean utilization: the
        // property the evaluator's congestion surcharge relies on.
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        let mut short = TrafficMap::new(&net);
        let mut long = TrafficMap::new(&net);
        let mut p = Vec::new();
        net.route_cores(arch.core_at(0, 0), arch.core_at(1, 0), &mut p);
        short.add_path(&p, 1e9);
        p.clear();
        net.route_cores(arch.core_at(0, 0), arch.core_at(5, 5), &mut p);
        long.add_path(&p, 1e9);
        assert!(long.mean_link_time(&net) > short.mean_link_time(&net));
    }
}
