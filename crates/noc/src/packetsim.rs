//! Packet-level (flit-granular) network simulation.
//!
//! The evaluator's analytic model treats links independently; the
//! flow-level simulator ([`crate::flowsim`]) adds max-min fair sharing
//! but still assumes fluid traffic. This module is the third and most
//! detailed rung of the validation ladder: a cycle-driven, flit-granular
//! simulation with finite router queues, credit-style backpressure and
//! round-robin link arbitration — the mechanisms a real wormhole /
//! virtual-cut-through NoC exhibits. It exists to *cross-validate* the
//! cheaper models (see `tests/packetsim_crosscheck.rs`), not to replace
//! them inside the annealer, where millions of evaluations must stay
//! cheap.
//!
//! Model summary:
//!
//! * every flow follows its fixed pre-routed path (XY / dimension-order,
//!   from [`crate::network::Network`]);
//! * each link serves whole flits per cycle from a token bucket filled
//!   at `bandwidth / flit_bytes` flits per cycle (so a 16 GB/s D2D link
//!   at 1 GHz and 16-byte flits earns one flit per cycle);
//! * a served flit advances to the next link's input queue only if that
//!   queue has space (`queue_flits`); otherwise the flit stays and the
//!   arbiter tries another flow — per-flow skipping approximates
//!   virtual channels, so head-of-line blocking is per flow, not per
//!   link;
//! * flits that arrive during a cycle become eligible the next cycle
//!   (one-hop-per-cycle forwarding latency).
//!
//! # Example
//!
//! ```
//! use gemini_arch::presets;
//! use gemini_noc::{packetsim::{simulate_packets, PacketSimConfig}, flowsim::Flow, Network};
//!
//! let arch = presets::g_arch_72();
//! let net = Network::new(&arch);
//! let mut path = Vec::new();
//! net.route_cores(arch.core_at(0, 0), arch.core_at(2, 0), &mut path);
//! let flows = vec![Flow { path, bytes: 32_000.0 }];
//! let r = simulate_packets(&net, &flows, &PacketSimConfig::default());
//! // 32 kB over 32 GB/s links: ~1 us plus a few cycles of latency.
//! assert!(r.completion_s >= 1.0e-6 && r.completion_s < 1.2e-6);
//! ```

use serde::{Deserialize, Serialize};

use crate::flowsim::Flow;
use crate::network::{LinkId, Network};

/// Configuration of the packet-level simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketSimConfig {
    /// Bytes per flit (link word size).
    pub flit_bytes: f64,
    /// Input-queue depth per link, in flits.
    pub queue_flits: u32,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Safety bound on simulated cycles (0 = derive from traffic).
    pub max_cycles: u64,
}

impl Default for PacketSimConfig {
    fn default() -> Self {
        Self {
            flit_bytes: 16.0,
            queue_flits: 8,
            freq_ghz: 1.0,
            max_cycles: 0,
        }
    }
}

/// Result of a packet-level simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketSimResult {
    /// Time until the last flit ejects (seconds).
    pub completion_s: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Per-flow completion times (seconds), parallel to the input.
    pub flow_times_s: Vec<f64>,
    /// Total flit-hops executed.
    pub flit_hops: u64,
    /// Whether the safety cycle bound was hit before completion.
    pub truncated: bool,
}

/// One (flow, hop) queue entry location.
#[derive(Debug, Clone, Copy)]
struct Entry {
    flow: u32,
    hop: u32,
}

/// Reusable scratch state for packet simulations.
///
/// The winner-validation stage of the DSE fidelity ladder replays every
/// group of every DNN of the final candidate through the packet model;
/// the per-link and per-(flow, hop) queue vectors dominate allocation
/// there, so batch callers keep one workspace alive and call
/// [`PacketSimWorkspace::simulate`]. Results are bit-identical to the
/// one-shot [`simulate_packets`] wrapper.
#[derive(Debug, Default)]
pub struct PacketSimWorkspace {
    total_flits: Vec<u64>,
    entries_on: Vec<Vec<Entry>>,
    active_links: Vec<usize>,
    rate: Vec<f64>,
    tokens: Vec<f64>,
    ready: Vec<Vec<u64>>,
    arrived: Vec<Vec<u64>>,
    link_occ: Vec<u64>,
    to_inject: Vec<u64>,
    ejected: Vec<u64>,
    done_cycle: Vec<u64>,
    rr: Vec<usize>,
}

impl PacketSimWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates the concurrent flit-level transfer of `flows`.
    ///
    /// Flows with empty paths complete at t = 0. Byte counts are
    /// rounded up to whole flits.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.flit_bytes`, `cfg.queue_flits` or `cfg.freq_ghz`
    /// is not positive.
    pub fn simulate(
        &mut self,
        net: &Network,
        flows: &[Flow],
        cfg: &PacketSimConfig,
    ) -> PacketSimResult {
        assert!(cfg.flit_bytes > 0.0, "flit size must be positive");
        assert!(cfg.queue_flits > 0, "queues must hold at least one flit");
        assert!(cfg.freq_ghz > 0.0, "frequency must be positive");

        let n_flows = flows.len();
        self.total_flits.clear();
        self.total_flits.extend(
            flows
                .iter()
                .map(|f| (f.bytes / cfg.flit_bytes).ceil() as u64),
        );

        // Static routing tables: which (flow, hop) entries feed each link.
        let n_links = net.n_links();
        if self.entries_on.len() < n_links {
            self.entries_on.resize_with(n_links, Vec::new);
        }
        for v in &mut self.entries_on[..n_links] {
            v.clear();
        }
        for (fi, f) in flows.iter().enumerate() {
            for (h, l) in f.path.iter().enumerate() {
                self.entries_on[l.idx()].push(Entry {
                    flow: fi as u32,
                    hop: h as u32,
                });
            }
        }
        self.active_links.clear();
        self.active_links
            .extend((0..n_links).filter(|&l| !self.entries_on[l].is_empty()));

        // Flits-per-cycle service rate and token bucket per link.
        self.rate.clear();
        self.rate.extend(
            (0..n_links).map(|l| net.link(LinkId(l as u32)).bw / (cfg.flit_bytes * cfg.freq_ghz)),
        );
        self.tokens.clear();
        self.tokens.resize(n_links, 0.0);

        // Queue state: ready[f][h] flits eligible this cycle at hop h's
        // input, arrived[f][h] flits that landed this cycle (eligible
        // next cycle).
        if self.ready.len() < n_flows {
            self.ready.resize_with(n_flows, Vec::new);
            self.arrived.resize_with(n_flows, Vec::new);
        }
        for (fi, f) in flows.iter().enumerate() {
            self.ready[fi].clear();
            self.ready[fi].resize(f.path.len(), 0);
            self.arrived[fi].clear();
            self.arrived[fi].resize(f.path.len(), 0);
        }
        self.link_occ.clear();
        self.link_occ.resize(n_links, 0);
        self.to_inject.clear();
        self.to_inject.extend_from_slice(&self.total_flits);
        self.ejected.clear();
        self.ejected.resize(n_flows, 0);
        self.done_cycle.clear();
        self.done_cycle.resize(n_flows, 0);
        self.rr.clear();
        self.rr.resize(n_links, 0);

        let Self {
            total_flits,
            entries_on,
            active_links,
            rate,
            tokens,
            ready,
            arrived,
            link_occ,
            to_inject,
            ejected,
            done_cycle,
            rr,
        } = self;

        // Empty-path flows (producer == consumer) complete instantly.
        for (fi, f) in flows.iter().enumerate() {
            if f.path.is_empty() {
                ejected[fi] = total_flits[fi];
                to_inject[fi] = 0;
            }
        }

        let max_cycles = if cfg.max_cycles > 0 {
            cfg.max_cycles
        } else {
            // Generous bound: serial drain of every flit over every hop
            // at the slowest active rate, plus slack.
            let slowest = active_links
                .iter()
                .map(|&l| rate[l])
                .fold(f64::INFINITY, f64::min)
                .max(1e-6);
            let hops: u64 = flows
                .iter()
                .zip(total_flits.iter())
                .map(|(f, &n)| n * f.path.len() as u64)
                .sum();
            ((hops as f64 / slowest) * 4.0) as u64 + 1000
        };

        let mut cycles = 0u64;
        let mut flit_hops = 0u64;
        let mut truncated = false;

        loop {
            if (0..n_flows).all(|f| ejected[f] >= total_flits[f]) {
                break;
            }
            if cycles >= max_cycles {
                truncated = true;
                break;
            }
            cycles += 1;

            // Promote last cycle's arrivals.
            for fi in 0..n_flows {
                for h in 0..ready[fi].len() {
                    ready[fi][h] += arrived[fi][h];
                    arrived[fi][h] = 0;
                }
            }

            // Injection: sources push into hop 0 while the queue has
            // space (the first link's service rate is the real throttle).
            for fi in 0..n_flows {
                if to_inject[fi] == 0 || flows[fi].path.is_empty() {
                    continue;
                }
                let l0 = flows[fi].path[0].idx();
                let space = (cfg.queue_flits as u64).saturating_sub(link_occ[l0]);
                let n = space.min(to_inject[fi]);
                if n > 0 {
                    arrived[fi][0] += n;
                    link_occ[l0] += n;
                    to_inject[fi] -= n;
                }
            }

            // Service: each active link serves whole flits from its
            // token bucket, round-robin over its (flow, hop) entries.
            for &l in active_links.iter() {
                tokens[l] = (tokens[l] + rate[l]).min(rate[l].ceil().max(1.0) + rate[l]);
                let mut budget = tokens[l] as u64;
                if budget == 0 {
                    continue;
                }
                let entries = &entries_on[l];
                let n_e = entries.len();
                let mut blocked = 0usize;
                let mut i = rr[l] % n_e;
                while budget > 0 && blocked < n_e {
                    let Entry { flow, hop } = entries[i];
                    let (fi, h) = (flow as usize, hop as usize);
                    if ready[fi][h] == 0 {
                        blocked += 1;
                        i = (i + 1) % n_e;
                        continue;
                    }
                    // Forward one flit if the downstream queue has space.
                    let last_hop = h + 1 == flows[fi].path.len();
                    let can_move = if last_hop {
                        true // ejection always sinks
                    } else {
                        let nl = flows[fi].path[h + 1].idx();
                        link_occ[nl] < cfg.queue_flits as u64
                    };
                    if !can_move {
                        blocked += 1;
                        i = (i + 1) % n_e;
                        continue;
                    }
                    ready[fi][h] -= 1;
                    link_occ[l] -= 1;
                    budget -= 1;
                    tokens[l] -= 1.0;
                    flit_hops += 1;
                    blocked = 0;
                    if last_hop {
                        ejected[fi] += 1;
                        if ejected[fi] == total_flits[fi] {
                            done_cycle[fi] = cycles;
                        }
                    } else {
                        let nl = flows[fi].path[h + 1].idx();
                        arrived[fi][h + 1] += 1;
                        link_occ[nl] += 1;
                    }
                    i = (i + 1) % n_e;
                }
                rr[l] = i;
            }
        }

        let hz = cfg.freq_ghz * 1e9;
        PacketSimResult {
            completion_s: cycles as f64 / hz,
            cycles,
            flow_times_s: done_cycle.iter().map(|&c| c as f64 / hz).collect(),
            flit_hops,
            truncated,
        }
    }
}

/// Simulates the concurrent flit-level transfer of `flows`.
///
/// One-shot wrapper over [`PacketSimWorkspace::simulate`]; batch
/// callers (winner validation over many groups) should hold a
/// workspace instead to reuse the scratch allocations.
///
/// # Panics
///
/// Panics if `cfg.flit_bytes`, `cfg.queue_flits` or `cfg.freq_ghz` is
/// not positive.
pub fn simulate_packets(net: &Network, flows: &[Flow], cfg: &PacketSimConfig) -> PacketSimResult {
    PacketSimWorkspace::new().simulate(net, flows, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowsim::{analytic_bottleneck, simulate_flows};
    use gemini_arch::presets;

    fn setup() -> (gemini_arch::ArchConfig, Network) {
        let arch = presets::g_arch_72();
        (arch.clone(), Network::new(&arch))
    }

    fn flow(
        net: &Network,
        arch: &gemini_arch::ArchConfig,
        a: (u32, u32),
        b: (u32, u32),
        bytes: f64,
    ) -> Flow {
        let mut path = Vec::new();
        net.route_cores(arch.core_at(a.0, a.1), arch.core_at(b.0, b.1), &mut path);
        Flow { path, bytes }
    }

    #[test]
    fn single_flow_matches_bandwidth() {
        let (arch, net) = setup();
        // 32 kB over 32 GB/s on-chip links: 1 us of service plus a few
        // cycles of per-hop latency.
        let f = flow(&net, &arch, (0, 0), (2, 0), 32_000.0);
        let r = simulate_packets(&net, std::slice::from_ref(&f), &PacketSimConfig::default());
        assert!(!r.truncated);
        let ideal = analytic_bottleneck(&net, &[f]);
        assert!(
            r.completion_s >= ideal,
            "{} < ideal {}",
            r.completion_s,
            ideal
        );
        assert!(
            r.completion_s <= ideal * 1.05 + 20e-9,
            "{} too slow",
            r.completion_s
        );
    }

    #[test]
    fn conservation_of_flits() {
        let (arch, net) = setup();
        let flows = vec![
            flow(&net, &arch, (0, 0), (5, 5), 4_096.0),
            flow(&net, &arch, (5, 0), (0, 5), 8_192.0),
            flow(&net, &arch, (3, 3), (2, 2), 1_024.0),
        ];
        let cfg = PacketSimConfig::default();
        let r = simulate_packets(&net, &flows, &cfg);
        assert!(!r.truncated);
        // Every flit of every flow crosses every hop of its path exactly
        // once.
        let expected: u64 = flows
            .iter()
            .map(|f| (f.bytes / cfg.flit_bytes).ceil() as u64 * f.path.len() as u64)
            .sum();
        assert_eq!(r.flit_hops, expected);
    }

    #[test]
    fn shared_link_halves_throughput() {
        let (arch, net) = setup();
        // Both flows cross (0,0)->(1,0); fair sharing doubles the time
        // relative to one flow of the same size.
        let f1 = flow(&net, &arch, (0, 0), (1, 0), 16_000.0);
        let f2 = flow(&net, &arch, (0, 0), (2, 0), 16_000.0);
        let cfg = PacketSimConfig::default();
        let solo = simulate_packets(&net, std::slice::from_ref(&f1), &cfg);
        let both = simulate_packets(&net, &[f1, f2], &cfg);
        let ratio = both.completion_s / solo.completion_s;
        assert!(
            (1.8..2.3).contains(&ratio),
            "sharing should roughly double completion: ratio {ratio}"
        );
    }

    #[test]
    fn d2d_bottleneck_dominates() {
        let (arch, net) = setup();
        // Crossing the 16 GB/s chiplet cut takes ~2x the on-chip time.
        let cross = flow(&net, &arch, (2, 0), (3, 0), 16_000.0);
        let local = flow(&net, &arch, (0, 0), (1, 0), 16_000.0);
        let cfg = PacketSimConfig::default();
        let rc = simulate_packets(&net, &[cross], &cfg);
        let rl = simulate_packets(&net, &[local], &cfg);
        let ratio = rc.completion_s / rl.completion_s;
        assert!((1.8..2.2).contains(&ratio), "D2D ratio {ratio}");
    }

    #[test]
    fn never_beats_analytic_bound() {
        let (arch, net) = setup();
        let mut flows = Vec::new();
        for x in 0..6u32 {
            flows.push(flow(
                &net,
                &arch,
                (x, 0),
                (5 - x, 5),
                2_048.0 * (x + 1) as f64,
            ));
        }
        let r = simulate_packets(&net, &flows, &PacketSimConfig::default());
        let bound = analytic_bottleneck(&net, &flows);
        assert!(!r.truncated);
        assert!(
            r.completion_s >= bound * (1.0 - 1e-9),
            "{} < {}",
            r.completion_s,
            bound
        );
    }

    #[test]
    fn tracks_flowsim_within_constant_factor() {
        let (arch, net) = setup();
        let mut flows = Vec::new();
        for y in 0..6u32 {
            flows.push(flow(&net, &arch, (0, y), (5, 5 - y), 4_096.0));
            flows.push(flow(&net, &arch, (5, y), (0, y), 2_048.0));
        }
        let pk = simulate_packets(&net, &flows, &PacketSimConfig::default());
        let fl = simulate_flows(&net, &flows);
        assert!(!pk.truncated);
        let ratio = pk.completion_s / fl.completion_s;
        assert!(
            (0.9..3.0).contains(&ratio),
            "packet {} vs fluid {} (ratio {ratio})",
            pk.completion_s,
            fl.completion_s
        );
    }

    #[test]
    fn empty_and_zero_flows_complete_instantly() {
        let (arch, net) = setup();
        let r = simulate_packets(
            &net,
            &[
                Flow {
                    path: vec![],
                    bytes: 1e9,
                },
                flow(&net, &arch, (0, 0), (1, 0), 0.0),
            ],
            &PacketSimConfig::default(),
        );
        assert_eq!(r.cycles, 0);
        assert_eq!(r.completion_s, 0.0);
    }

    #[test]
    fn tiny_queues_still_drain() {
        let (arch, net) = setup();
        let cfg = PacketSimConfig {
            queue_flits: 1,
            ..Default::default()
        };
        let flows = vec![
            flow(&net, &arch, (0, 0), (5, 5), 4_096.0),
            flow(&net, &arch, (5, 5), (0, 0), 4_096.0),
            flow(&net, &arch, (0, 5), (5, 0), 4_096.0),
        ];
        let r = simulate_packets(&net, &flows, &cfg);
        assert!(
            !r.truncated,
            "single-flit queues must not deadlock XY routing"
        );
    }

    #[test]
    fn flow_times_bounded_by_completion() {
        let (arch, net) = setup();
        let flows = vec![
            flow(&net, &arch, (0, 0), (3, 3), 1_024.0),
            flow(&net, &arch, (0, 0), (3, 3), 8_192.0),
        ];
        let r = simulate_packets(&net, &flows, &PacketSimConfig::default());
        for &t in &r.flow_times_s {
            assert!(t <= r.completion_s + 1e-12);
        }
        assert!(
            r.flow_times_s[0] <= r.flow_times_s[1],
            "smaller flow finishes first"
        );
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        // Batch replays through one workspace must match the one-shot
        // wrapper exactly, set after set.
        let (arch, net) = setup();
        let cfg = PacketSimConfig::default();
        let sets = vec![
            vec![
                flow(&net, &arch, (0, 0), (1, 0), 16_000.0),
                flow(&net, &arch, (0, 0), (2, 0), 16_000.0),
            ],
            vec![flow(&net, &arch, (5, 5), (0, 0), 4_096.0)],
            Vec::new(),
            vec![
                flow(&net, &arch, (0, 5), (5, 0), 2_048.0),
                flow(&net, &arch, (3, 3), (2, 2), 1_024.0),
                flow(&net, &arch, (1, 1), (4, 4), 8_192.0),
            ],
        ];
        let mut ws = PacketSimWorkspace::new();
        for flows in &sets {
            let one_shot = simulate_packets(&net, flows, &cfg);
            let reused = ws.simulate(&net, flows, &cfg);
            assert_eq!(one_shot, reused);
        }
    }

    #[test]
    fn safety_bound_truncates_pathological_runs() {
        let (arch, net) = setup();
        let f = flow(&net, &arch, (0, 0), (5, 5), 1e6);
        let cfg = PacketSimConfig {
            max_cycles: 10,
            ..Default::default()
        };
        let r = simulate_packets(&net, &[f], &cfg);
        assert!(r.truncated);
        assert_eq!(r.cycles, 10);
    }

    #[test]
    #[should_panic(expected = "flit size")]
    fn rejects_zero_flit_size() {
        let (_, net) = setup();
        let cfg = PacketSimConfig {
            flit_bytes: 0.0,
            ..Default::default()
        };
        let _ = simulate_packets(&net, &[], &cfg);
    }

    #[test]
    fn folded_torus_wrap_traffic_drains() {
        // Dimension-order routing on the folded torus uses wrap links
        // for far-apart pairs; the simulator must drain them and still
        // conserve flits.
        let arch = gemini_arch::ArchConfig::builder()
            .cores(6, 6)
            .cuts(1, 1)
            .topology(gemini_arch::Topology::FoldedTorus)
            .build()
            .unwrap();
        let net = Network::new(&arch);
        let cfg = PacketSimConfig::default();
        let mut flows = Vec::new();
        for y in 0..6u32 {
            let mut path = Vec::new();
            net.route_cores(arch.core_at(0, y), arch.core_at(5, y), &mut path);
            flows.push(Flow {
                path,
                bytes: 4_096.0,
            });
        }
        let r = simulate_packets(&net, &flows, &cfg);
        assert!(!r.truncated);
        let expected: u64 = flows
            .iter()
            .map(|f| (f.bytes / cfg.flit_bytes).ceil() as u64 * f.path.len() as u64)
            .sum();
        assert_eq!(r.flit_hops, expected);
        // Torus wrap makes the (0,y) -> (5,y) path at most 3 hops long;
        // the same pair on a mesh needs 5.
        assert!(
            flows.iter().all(|f| f.path.len() <= 3),
            "wrap routing not used"
        );
    }

    #[test]
    fn torus_not_slower_than_mesh_for_edge_pairs() {
        let mk = |topo| {
            gemini_arch::ArchConfig::builder()
                .cores(6, 6)
                .cuts(1, 1)
                .topology(topo)
                .build()
                .unwrap()
        };
        let mesh_arch = mk(gemini_arch::Topology::Mesh);
        let torus_arch = mk(gemini_arch::Topology::FoldedTorus);
        let cfg = PacketSimConfig::default();
        let run = |arch: &gemini_arch::ArchConfig| {
            let net = Network::new(arch);
            let mut path = Vec::new();
            net.route_cores(arch.core_at(0, 0), arch.core_at(5, 0), &mut path);
            simulate_packets(
                &net,
                &[Flow {
                    path,
                    bytes: 16_000.0,
                }],
                &cfg,
            )
            .completion_s
        };
        assert!(run(&torus_arch) <= run(&mesh_arch));
    }
}
