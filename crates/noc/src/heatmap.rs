//! Network-traffic heatmaps (Fig. 9 of the paper).
//!
//! A [`Heatmap`] is a geometry-annotated snapshot of a [`TrafficMap`]:
//! each entry carries the endpoint coordinates (DRAM ports sit just off
//! the grid edge), the link kind, the raw bytes and the *pressure* —
//! bytes scaled by the bandwidth ratio relative to an on-chip link, which
//! is how the paper's figure displays D2D links ("we double the data
//! volume on it to display the bandwidth pressure more clearly" when D2D
//! bandwidth is half the NoC's).

use serde::{Deserialize, Serialize};

use crate::network::{LinkKind, Network, NodeId};
use crate::traffic::TrafficMap;

/// One link of the heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeatmapEntry {
    /// Source position; DRAM ports are rendered one step off-grid.
    pub from: (i32, i32),
    /// Destination position.
    pub to: (i32, i32),
    /// Link kind.
    pub kind: LinkKind,
    /// Raw bytes carried.
    pub bytes: f64,
    /// Bandwidth-normalized pressure (`bytes * noc_bw / link_bw`).
    pub pressure: f64,
}

/// A full traffic heatmap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Grid dimensions (x, y).
    pub grid: (u32, u32),
    /// All loaded links.
    pub entries: Vec<HeatmapEntry>,
}

fn node_pos(n: NodeId, grid_x: u32) -> (i32, i32) {
    match n {
        NodeId::Core(c) => (c.x as i32, c.y as i32),
        NodeId::DramPort { at, .. } => {
            // Ports render one step outside the grid on their edge.
            if at.x == 0 {
                (-1, at.y as i32)
            } else if at.x as u32 == grid_x - 1 {
                (grid_x as i32, at.y as i32)
            } else {
                (at.x as i32, -1)
            }
        }
    }
}

impl Heatmap {
    /// Builds a heatmap from accumulated traffic.
    pub fn build(net: &Network, traffic: &TrafficMap) -> Self {
        let noc_bw = net.arch().noc_bw();
        let grid = (net.arch().x_cores(), net.arch().y_cores());
        let entries = traffic
            .iter_loaded()
            .map(|(id, bytes)| {
                let l = net.link(id);
                HeatmapEntry {
                    from: node_pos(l.from, grid.0),
                    to: node_pos(l.to, grid.0),
                    kind: l.kind,
                    bytes,
                    pressure: bytes * noc_bw / l.bw,
                }
            })
            .collect();
        Self { grid, entries }
    }

    /// Peak pressure over all links (the "reddest" link of Fig. 9).
    pub fn peak_pressure(&self) -> f64 {
        self.entries.iter().map(|e| e.pressure).fold(0.0, f64::max)
    }

    /// Peak pressure restricted to D2D links.
    ///
    /// Monolithic architectures (XCut = YCut = 1) have *no* D2D links,
    /// so this is `None` rather than a guaranteed entry — callers must
    /// not `find(..).unwrap()` a D2D link out of a heatmap.
    pub fn d2d_peak_pressure(&self) -> Option<f64> {
        self.entries
            .iter()
            .filter(|e| e.kind.is_d2d())
            .map(|e| e.pressure)
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.max(p))))
    }

    /// Number of links whose pressure exceeds `frac` of the peak.
    pub fn hot_links(&self, frac: f64) -> usize {
        let peak = self.peak_pressure();
        if peak == 0.0 {
            return 0;
        }
        self.entries
            .iter()
            .filter(|e| e.pressure >= frac * peak)
            .count()
    }

    /// CSV rows: `from_x,from_y,to_x,to_y,kind,bytes,pressure`.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("from_x,from_y,to_x,to_y,kind,bytes,pressure\n");
        for e in &self.entries {
            let kind = match e.kind {
                LinkKind::Noc => "noc",
                LinkKind::D2d => "d2d",
                LinkKind::DramInj(_) => "dram_rd",
                LinkKind::DramEj(_) => "dram_wr",
            };
            s.push_str(&format!(
                "{},{},{},{},{},{:.0},{:.0}\n",
                e.from.0, e.from.1, e.to.0, e.to.1, kind, e.bytes, e.pressure
            ));
        }
        s
    }

    /// A coarse ASCII rendering: one cell per core showing the local
    /// pressure as a digit 0-9 relative to the peak (for terminal
    /// inspection of Fig.-9-style results).
    pub fn render_ascii(&self) -> String {
        let (gx, gy) = self.grid;
        let peak = self.peak_pressure().max(1.0);
        let mut load = vec![0.0f64; (gx * gy) as usize];
        for e in &self.entries {
            for &(x, y) in &[e.from, e.to] {
                if x >= 0 && y >= 0 && (x as u32) < gx && (y as u32) < gy {
                    load[(y as u32 * gx + x as u32) as usize] += e.pressure / 2.0;
                }
            }
        }
        let peak_cell = load.iter().cloned().fold(0.0, f64::max).max(peak / 10.0);
        let mut s = String::new();
        for y in 0..gy {
            for x in 0..gx {
                let v = load[(y * gx + x) as usize] / peak_cell;
                let d = (v * 9.0).round().min(9.0) as u32;
                s.push_str(&format!("{d} "));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use gemini_arch::presets;

    fn loaded_heatmap() -> Heatmap {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        let mut t = TrafficMap::new(&net);
        let mut p = Vec::new();
        net.route_cores(arch.core_at(0, 0), arch.core_at(5, 0), &mut p);
        t.add_path(&p, 1000.0);
        Heatmap::build(&net, &t)
    }

    #[test]
    fn d2d_pressure_is_scaled() {
        let h = loaded_heatmap();
        // NoC 32 GB/s, D2D 16 GB/s: the D2D link shows 2x pressure.
        let d2d = h.entries.iter().find(|e| e.kind.is_d2d()).unwrap();
        assert_eq!(d2d.bytes, 1000.0);
        assert_eq!(d2d.pressure, 2000.0);
        assert_eq!(h.peak_pressure(), 2000.0);
    }

    #[test]
    fn hot_links_counts_near_peak() {
        let h = loaded_heatmap();
        assert_eq!(h.hot_links(0.9), 1, "only the D2D link is at peak");
        assert_eq!(h.hot_links(0.4), h.entries.len());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let h = loaded_heatmap();
        let csv = h.to_csv();
        assert!(csv.starts_with("from_x,from_y"));
        assert_eq!(csv.lines().count(), 1 + h.entries.len());
        assert!(csv.contains("d2d"));
    }

    #[test]
    fn ascii_renders_grid() {
        let h = loaded_heatmap();
        let art = h.render_ascii();
        assert_eq!(art.lines().count(), 6);
    }

    #[test]
    fn monolithic_heatmap_has_no_d2d_entries() {
        // XCut = YCut = 1: no chiplet boundary, hence no D2D links.
        // Every heatmap surface must stay defined on this architecture.
        let arch = gemini_arch::ArchConfig::builder()
            .cores(4, 4)
            .cuts(1, 1)
            .build()
            .unwrap();
        let net = Network::new(&arch);
        let mut t = TrafficMap::new(&net);
        let mut p = Vec::new();
        net.route_cores(arch.core_at(0, 0), arch.core_at(3, 3), &mut p);
        t.add_path(&p, 1e6);
        let h = Heatmap::build(&net, &t);
        assert!(h.entries.iter().all(|e| !e.kind.is_d2d()));
        assert_eq!(h.d2d_peak_pressure(), None);
        assert!(h.peak_pressure() > 0.0);
        assert!(h.hot_links(0.5) >= 1);
        assert_eq!(h.render_ascii().lines().count(), 4);
        let with_d2d = loaded_heatmap();
        assert_eq!(with_d2d.d2d_peak_pressure(), Some(2000.0));
    }

    #[test]
    fn dram_ports_render_off_grid() {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        let mut t = TrafficMap::new(&net);
        let mut scratch = Vec::new();
        net.for_each_dram_read_path(0, arch.core_at(2, 2), &mut scratch, |_| {});
        // Load the last computed path (port 5 -> core).
        t.add_path(&scratch, 64.0);
        let h = Heatmap::build(&net, &t);
        assert!(
            h.entries.iter().any(|e| e.from.0 == -1),
            "west DRAM port at x=-1"
        );
    }
}
