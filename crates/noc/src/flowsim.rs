//! Flow-level network simulation (max-min fair sharing).
//!
//! The evaluator's analytic stage time treats each link independently
//! (`max(bytes/bw)` plus a congestion surcharge). This module provides
//! the reference point it is checked against: a progressive-filling
//! simulation where concurrent flows share every link max-min fairly
//! and the network drains event by event. `simulate_flows` returns the
//! exact completion time under that model — always at least the
//! analytic bottleneck bound, and equal to it when flows do not
//! contend.
//!
//! # Example
//!
//! ```
//! use gemini_arch::presets;
//! use gemini_noc::{flowsim::{simulate_flows, Flow}, Network};
//!
//! let arch = presets::g_arch_72();
//! let net = Network::new(&arch);
//! let mut path = Vec::new();
//! net.route_cores(arch.core_at(0, 0), arch.core_at(2, 0), &mut path);
//! let flows = vec![Flow { path: path.clone(), bytes: 32e9 }];
//! let r = simulate_flows(&net, &flows);
//! // One flow, 32 GB over on-chip 32 GB/s links: exactly one second.
//! assert!((r.completion_s - 1.0).abs() < 1e-9);
//! ```

use serde::{Deserialize, Serialize};

use crate::network::{LinkId, Network};

/// One flow: a fixed path and a byte count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Links traversed (in order; order does not affect fluid timing).
    pub path: Vec<LinkId>,
    /// Bytes to transfer.
    pub bytes: f64,
}

/// Result of a flow simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSimResult {
    /// Time until the last flow completes (seconds).
    pub completion_s: f64,
    /// Per-flow completion times, parallel to the input.
    pub flow_times_s: Vec<f64>,
    /// Number of rate-reallocation events simulated.
    pub events: usize,
}

/// Reusable scratch state for flow simulations.
///
/// The DSE re-rank stage replays every group of every top-K candidate
/// back to back; the per-link and per-flow vectors dominate allocation
/// there, so callers with many consecutive simulations keep one
/// workspace alive and call [`FlowSimWorkspace::simulate`] instead of
/// the allocating [`simulate_flows`] wrapper. Results are bit-identical
/// between the two entry points.
#[derive(Debug, Default)]
pub struct FlowSimWorkspace {
    link_cap: Vec<f64>,
    flows_on: Vec<Vec<usize>>,
    remaining_on: Vec<usize>,
    rate: Vec<f64>,
    fixed: Vec<bool>,
    remaining: Vec<f64>,
    done: Vec<f64>,
    active: Vec<usize>,
}

impl FlowSimWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Max-min fair rate allocation for the active flows (progressive
    /// filling / water-filling): repeatedly freeze the most constrained
    /// link's fair share. Rates land in `self.rate`, parallel to
    /// `active`.
    fn maxmin_rates(&mut self, net: &Network, active: &[usize], flows: &[Flow]) {
        let n_links = net.n_links();
        self.link_cap.clear();
        self.link_cap
            .extend((0..n_links).map(|i| net.link(LinkId(i as u32)).bw * 1e9));
        if self.flows_on.len() < n_links {
            self.flows_on.resize_with(n_links, Vec::new);
        }
        // Flows crossing each link (indices into `active`).
        for v in &mut self.flows_on[..n_links] {
            v.clear();
        }
        for (ai, &fi) in active.iter().enumerate() {
            for l in &flows[fi].path {
                self.flows_on[l.idx()].push(ai);
            }
        }
        self.rate.clear();
        self.rate.resize(active.len(), f64::INFINITY);
        self.fixed.clear();
        self.fixed.resize(active.len(), false);
        self.remaining_on.clear();
        self.remaining_on
            .extend(self.flows_on[..n_links].iter().map(|f| f.len()));

        let Self {
            link_cap,
            flows_on,
            remaining_on,
            rate,
            fixed,
            ..
        } = self;
        loop {
            // Most constrained link: min cap / remaining flows.
            let mut best: Option<(f64, usize)> = None;
            for l in 0..n_links {
                if remaining_on[l] == 0 {
                    continue;
                }
                let share = link_cap[l] / remaining_on[l] as f64;
                if best.map_or(true, |(s, _)| share < s) {
                    best = Some((share, l));
                }
            }
            let Some((share, l)) = best else { break };
            // Freeze every unfixed flow on that link at the fair share.
            for &ai in &flows_on[l] {
                if fixed[ai] {
                    continue;
                }
                fixed[ai] = true;
                rate[ai] = share;
                // Release its capacity claims elsewhere.
                for link in &flows[active[ai]].path {
                    link_cap[link.idx()] -= share;
                    if link_cap[link.idx()] < 0.0 {
                        link_cap[link.idx()] = 0.0;
                    }
                    remaining_on[link.idx()] -= 1;
                }
            }
        }
        // Flows touching no links (empty paths, e.g. same-core
        // transfers) complete instantly.
        for (ai, r) in rate.iter_mut().enumerate() {
            if flows[active[ai]].path.is_empty() {
                *r = f64::INFINITY;
            }
        }
    }

    /// Simulates the concurrent transfer of `flows`, max-min fair.
    ///
    /// Returns exact per-flow completion times under fluid sharing.
    /// Flows with empty paths complete at t = 0.
    pub fn simulate(&mut self, net: &Network, flows: &[Flow]) -> FlowSimResult {
        self.remaining.clear();
        self.remaining
            .extend(flows.iter().map(|f| f.bytes.max(0.0)));
        self.done.clear();
        self.done.resize(flows.len(), 0.0);
        let mut t = 0.0f64;
        let mut events = 0usize;

        loop {
            let mut active = std::mem::take(&mut self.active);
            active.clear();
            active.extend((0..flows.len()).filter(|&i| self.remaining[i] > 0.0));
            if active.is_empty() {
                self.active = active;
                break;
            }
            events += 1;
            self.maxmin_rates(net, &active, flows);
            // Advance to the next flow completion.
            let mut dt = f64::INFINITY;
            for (ai, &fi) in active.iter().enumerate() {
                if self.rate[ai] > 0.0 {
                    dt = dt.min(self.remaining[fi] / self.rate[ai]);
                }
            }
            if !dt.is_finite() {
                // All active rates are zero: a saturated/degenerate
                // network; bail out rather than loop forever.
                self.active = active;
                break;
            }
            t += dt;
            for (ai, &fi) in active.iter().enumerate() {
                self.remaining[fi] -= self.rate[ai] * dt;
                if self.remaining[fi] <= 1e-6 {
                    self.remaining[fi] = 0.0;
                    self.done[fi] = t;
                }
            }
            self.active = active;
            // Safety valve: events are bounded by flow count in exact
            // arithmetic; guard against pathological float cycling.
            if events > flows.len() * 4 + 16 {
                break;
            }
        }
        FlowSimResult {
            completion_s: t,
            flow_times_s: self.done.clone(),
            events,
        }
    }
}

/// Simulates the concurrent transfer of `flows`, max-min fair.
///
/// One-shot wrapper over [`FlowSimWorkspace::simulate`]; callers that
/// replay many flow sets back to back (e.g. the DSE re-rank stage)
/// should hold a workspace instead to reuse the scratch allocations.
pub fn simulate_flows(net: &Network, flows: &[Flow]) -> FlowSimResult {
    FlowSimWorkspace::new().simulate(net, flows)
}

/// The analytic per-link bound the evaluator uses: bytes on the busiest
/// link divided by its bandwidth (a lower bound on any schedule).
pub fn analytic_bottleneck(net: &Network, flows: &[Flow]) -> f64 {
    let mut traffic = crate::traffic::TrafficMap::new(net);
    for f in flows {
        traffic.add_path(&f.path, f.bytes);
    }
    traffic.bottleneck_time(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_arch::presets;

    fn setup() -> (gemini_arch::ArchConfig, Network) {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        (arch, net)
    }

    fn flow(
        net: &Network,
        arch: &gemini_arch::ArchConfig,
        a: (u32, u32),
        b: (u32, u32),
        bytes: f64,
    ) -> Flow {
        let mut path = Vec::new();
        net.route_cores(arch.core_at(a.0, a.1), arch.core_at(b.0, b.1), &mut path);
        Flow { path, bytes }
    }

    #[test]
    fn single_flow_exact() {
        let (arch, net) = setup();
        let f = flow(&net, &arch, (0, 0), (2, 0), 32e9);
        let r = simulate_flows(&net, std::slice::from_ref(&f));
        assert!((r.completion_s - 1.0).abs() < 1e-9, "{}", r.completion_s);
        assert!((analytic_bottleneck(&net, &[f]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let (arch, net) = setup();
        // Both flows cross link (0,0)->(1,0): each gets half the 32 GB/s.
        let f1 = flow(&net, &arch, (0, 0), (1, 0), 16e9);
        let f2 = flow(&net, &arch, (0, 0), (2, 0), 16e9);
        let r = simulate_flows(&net, &[f1.clone(), f2.clone()]);
        // Fair share 16 GB/s each on the shared link: both finish at 1s.
        assert!((r.completion_s - 1.0).abs() < 1e-6, "{}", r.completion_s);
        // The analytic bound sees 32 GB on the shared link: also 1s.
        assert!((analytic_bottleneck(&net, &[f1, f2]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_flows_run_in_parallel() {
        let (arch, net) = setup();
        let f1 = flow(&net, &arch, (0, 0), (1, 0), 32e9);
        let f2 = flow(&net, &arch, (0, 5), (1, 5), 32e9);
        let r = simulate_flows(&net, &[f1, f2]);
        assert!(
            (r.completion_s - 1.0).abs() < 1e-6,
            "parallel rows must not serialize"
        );
    }

    #[test]
    fn simulation_never_beats_analytic_bound() {
        let (arch, net) = setup();
        // A messy all-to-some pattern.
        let mut flows = Vec::new();
        for x in 0..6u32 {
            for y in 0..3u32 {
                flows.push(flow(
                    &net,
                    &arch,
                    (x, y),
                    (5 - x, 5 - y),
                    1e8 * (x + y + 1) as f64,
                ));
            }
        }
        let r = simulate_flows(&net, &flows);
        let bound = analytic_bottleneck(&net, &flows);
        assert!(
            r.completion_s >= bound * (1.0 - 1e-9),
            "fluid completion {} cannot beat per-link bound {}",
            r.completion_s,
            bound
        );
        // And stays within a small constant of it for this pattern.
        assert!(
            r.completion_s <= bound * 4.0,
            "{} vs {}",
            r.completion_s,
            bound
        );
    }

    #[test]
    fn d2d_flows_are_slower() {
        let (arch, net) = setup();
        // Crossing the chiplet cut (16 GB/s) vs staying inside (32 GB/s).
        let cross = flow(&net, &arch, (2, 0), (3, 0), 16e9);
        let local = flow(&net, &arch, (0, 0), (1, 0), 16e9);
        let rc = simulate_flows(&net, &[cross]);
        let rl = simulate_flows(&net, &[local]);
        assert!((rc.completion_s / rl.completion_s - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_paths_complete_instantly() {
        let (_, net) = setup();
        let r = simulate_flows(
            &net,
            &[Flow {
                path: vec![],
                bytes: 1e12,
            }],
        );
        assert_eq!(r.completion_s, 0.0);
        assert_eq!(r.flow_times_s, vec![0.0]);
    }

    #[test]
    fn zero_byte_flows_are_noops() {
        let (arch, net) = setup();
        let f = flow(&net, &arch, (0, 0), (5, 5), 0.0);
        let r = simulate_flows(&net, &[f]);
        assert_eq!(r.completion_s, 0.0);
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        // The batch entry point must match the one-shot wrapper exactly,
        // including across back-to-back replays of different flow sets.
        let (arch, net) = setup();
        let sets = vec![
            vec![
                flow(&net, &arch, (0, 0), (1, 0), 16e9),
                flow(&net, &arch, (0, 0), (2, 0), 16e9),
            ],
            vec![flow(&net, &arch, (0, 0), (5, 5), 3e9)],
            Vec::new(),
            vec![
                flow(&net, &arch, (5, 0), (0, 5), 1e9),
                flow(&net, &arch, (2, 2), (3, 3), 2e9),
                flow(&net, &arch, (1, 4), (4, 1), 4e9),
            ],
        ];
        let mut ws = FlowSimWorkspace::new();
        for flows in &sets {
            let one_shot = simulate_flows(&net, flows);
            let reused = ws.simulate(&net, flows);
            assert_eq!(one_shot, reused);
        }
    }

    #[test]
    fn flow_times_are_monotone_in_bytes() {
        let (arch, net) = setup();
        let small = flow(&net, &arch, (0, 0), (3, 3), 1e9);
        let big = flow(&net, &arch, (0, 0), (3, 3), 4e9);
        let r = simulate_flows(&net, &[small, big]);
        assert!(r.flow_times_s[0] <= r.flow_times_s[1]);
        assert_eq!(r.completion_s, r.flow_times_s[1]);
    }
}
