//! Flow-level network simulation (max-min fair sharing).
//!
//! The evaluator's analytic stage time treats each link independently
//! (`max(bytes/bw)` plus a congestion surcharge). This module provides
//! the reference point it is checked against: a progressive-filling
//! simulation where concurrent flows share every link max-min fairly
//! and the network drains event by event. `simulate_flows` returns the
//! exact completion time under that model — always at least the
//! analytic bottleneck bound, and equal to it when flows do not
//! contend.
//!
//! # Example
//!
//! ```
//! use gemini_arch::presets;
//! use gemini_noc::{flowsim::{simulate_flows, Flow}, Network};
//!
//! let arch = presets::g_arch_72();
//! let net = Network::new(&arch);
//! let mut path = Vec::new();
//! net.route_cores(arch.core_at(0, 0), arch.core_at(2, 0), &mut path);
//! let flows = vec![Flow { path: path.clone(), bytes: 32e9 }];
//! let r = simulate_flows(&net, &flows);
//! // One flow, 32 GB over on-chip 32 GB/s links: exactly one second.
//! assert!((r.completion_s - 1.0).abs() < 1e-9);
//! ```

use serde::{Deserialize, Serialize};

use crate::network::{LinkId, Network};

/// One flow: a fixed path and a byte count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Links traversed (in order; order does not affect fluid timing).
    pub path: Vec<LinkId>,
    /// Bytes to transfer.
    pub bytes: f64,
}

/// Result of a flow simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSimResult {
    /// Time until the last flow completes (seconds).
    pub completion_s: f64,
    /// Per-flow completion times, parallel to the input.
    pub flow_times_s: Vec<f64>,
    /// Number of rate-reallocation events simulated.
    pub events: usize,
}

/// Max-min fair rate allocation for the active flows (progressive
/// filling / water-filling): repeatedly freeze the most constrained
/// link's fair share.
fn maxmin_rates(net: &Network, active: &[usize], paths: &[&Flow]) -> Vec<f64> {
    let n_links = net.n_links();
    let mut link_cap: Vec<f64> = (0..n_links)
        .map(|i| net.link(LinkId(i as u32)).bw * 1e9)
        .collect();
    // Flows crossing each link (indices into `active`).
    let mut flows_on: Vec<Vec<usize>> = vec![Vec::new(); n_links];
    for (ai, &fi) in active.iter().enumerate() {
        for l in &paths[fi].path {
            flows_on[l.idx()].push(ai);
        }
    }
    let mut rate = vec![f64::INFINITY; active.len()];
    let mut fixed = vec![false; active.len()];
    let mut remaining_on: Vec<usize> = flows_on.iter().map(|f| f.len()).collect();

    loop {
        // Most constrained link: min cap / remaining flows.
        let mut best: Option<(f64, usize)> = None;
        for l in 0..n_links {
            if remaining_on[l] == 0 {
                continue;
            }
            let share = link_cap[l] / remaining_on[l] as f64;
            if best.map_or(true, |(s, _)| share < s) {
                best = Some((share, l));
            }
        }
        let Some((share, l)) = best else { break };
        // Freeze every unfixed flow on that link at the fair share.
        for &ai in flows_on[l].clone().iter() {
            if fixed[ai] {
                continue;
            }
            fixed[ai] = true;
            rate[ai] = share;
            // Release its capacity claims elsewhere.
            for link in &paths[active[ai]].path {
                link_cap[link.idx()] -= share;
                if link_cap[link.idx()] < 0.0 {
                    link_cap[link.idx()] = 0.0;
                }
                remaining_on[link.idx()] -= 1;
            }
        }
    }
    // Flows touching no links (empty paths, e.g. same-core transfers)
    // complete instantly.
    for (ai, r) in rate.iter_mut().enumerate() {
        if paths[active[ai]].path.is_empty() {
            *r = f64::INFINITY;
        }
    }
    rate
}

/// Simulates the concurrent transfer of `flows`, max-min fair.
///
/// Returns exact per-flow completion times under fluid sharing. Flows
/// with empty paths complete at t = 0.
pub fn simulate_flows(net: &Network, flows: &[Flow]) -> FlowSimResult {
    let paths: Vec<&Flow> = flows.iter().collect();
    let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes.max(0.0)).collect();
    let mut done = vec![0.0f64; flows.len()];
    let mut t = 0.0f64;
    let mut events = 0usize;

    loop {
        let active: Vec<usize> = (0..flows.len()).filter(|&i| remaining[i] > 0.0).collect();
        if active.is_empty() {
            break;
        }
        events += 1;
        let rates = maxmin_rates(net, &active, &paths);
        // Advance to the next flow completion.
        let mut dt = f64::INFINITY;
        for (ai, &fi) in active.iter().enumerate() {
            if rates[ai] > 0.0 {
                dt = dt.min(remaining[fi] / rates[ai]);
            }
        }
        if !dt.is_finite() {
            // All active rates are zero: a saturated/degenerate network;
            // bail out rather than loop forever.
            break;
        }
        t += dt;
        for (ai, &fi) in active.iter().enumerate() {
            remaining[fi] -= rates[ai] * dt;
            if remaining[fi] <= 1e-6 {
                remaining[fi] = 0.0;
                done[fi] = t;
            }
        }
        // Safety valve: events are bounded by flow count in exact
        // arithmetic; guard against pathological float cycling.
        if events > flows.len() * 4 + 16 {
            break;
        }
    }
    FlowSimResult {
        completion_s: t,
        flow_times_s: done,
        events,
    }
}

/// The analytic per-link bound the evaluator uses: bytes on the busiest
/// link divided by its bandwidth (a lower bound on any schedule).
pub fn analytic_bottleneck(net: &Network, flows: &[Flow]) -> f64 {
    let mut traffic = crate::traffic::TrafficMap::new(net);
    for f in flows {
        traffic.add_path(&f.path, f.bytes);
    }
    traffic.bottleneck_time(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_arch::presets;

    fn setup() -> (gemini_arch::ArchConfig, Network) {
        let arch = presets::g_arch_72();
        let net = Network::new(&arch);
        (arch, net)
    }

    fn flow(
        net: &Network,
        arch: &gemini_arch::ArchConfig,
        a: (u32, u32),
        b: (u32, u32),
        bytes: f64,
    ) -> Flow {
        let mut path = Vec::new();
        net.route_cores(arch.core_at(a.0, a.1), arch.core_at(b.0, b.1), &mut path);
        Flow { path, bytes }
    }

    #[test]
    fn single_flow_exact() {
        let (arch, net) = setup();
        let f = flow(&net, &arch, (0, 0), (2, 0), 32e9);
        let r = simulate_flows(&net, std::slice::from_ref(&f));
        assert!((r.completion_s - 1.0).abs() < 1e-9, "{}", r.completion_s);
        assert!((analytic_bottleneck(&net, &[f]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let (arch, net) = setup();
        // Both flows cross link (0,0)->(1,0): each gets half the 32 GB/s.
        let f1 = flow(&net, &arch, (0, 0), (1, 0), 16e9);
        let f2 = flow(&net, &arch, (0, 0), (2, 0), 16e9);
        let r = simulate_flows(&net, &[f1.clone(), f2.clone()]);
        // Fair share 16 GB/s each on the shared link: both finish at 1s.
        assert!((r.completion_s - 1.0).abs() < 1e-6, "{}", r.completion_s);
        // The analytic bound sees 32 GB on the shared link: also 1s.
        assert!((analytic_bottleneck(&net, &[f1, f2]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_flows_run_in_parallel() {
        let (arch, net) = setup();
        let f1 = flow(&net, &arch, (0, 0), (1, 0), 32e9);
        let f2 = flow(&net, &arch, (0, 5), (1, 5), 32e9);
        let r = simulate_flows(&net, &[f1, f2]);
        assert!(
            (r.completion_s - 1.0).abs() < 1e-6,
            "parallel rows must not serialize"
        );
    }

    #[test]
    fn simulation_never_beats_analytic_bound() {
        let (arch, net) = setup();
        // A messy all-to-some pattern.
        let mut flows = Vec::new();
        for x in 0..6u32 {
            for y in 0..3u32 {
                flows.push(flow(
                    &net,
                    &arch,
                    (x, y),
                    (5 - x, 5 - y),
                    1e8 * (x + y + 1) as f64,
                ));
            }
        }
        let r = simulate_flows(&net, &flows);
        let bound = analytic_bottleneck(&net, &flows);
        assert!(
            r.completion_s >= bound * (1.0 - 1e-9),
            "fluid completion {} cannot beat per-link bound {}",
            r.completion_s,
            bound
        );
        // And stays within a small constant of it for this pattern.
        assert!(
            r.completion_s <= bound * 4.0,
            "{} vs {}",
            r.completion_s,
            bound
        );
    }

    #[test]
    fn d2d_flows_are_slower() {
        let (arch, net) = setup();
        // Crossing the chiplet cut (16 GB/s) vs staying inside (32 GB/s).
        let cross = flow(&net, &arch, (2, 0), (3, 0), 16e9);
        let local = flow(&net, &arch, (0, 0), (1, 0), 16e9);
        let rc = simulate_flows(&net, &[cross]);
        let rl = simulate_flows(&net, &[local]);
        assert!((rc.completion_s / rl.completion_s - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_paths_complete_instantly() {
        let (_, net) = setup();
        let r = simulate_flows(
            &net,
            &[Flow {
                path: vec![],
                bytes: 1e12,
            }],
        );
        assert_eq!(r.completion_s, 0.0);
        assert_eq!(r.flow_times_s, vec![0.0]);
    }

    #[test]
    fn zero_byte_flows_are_noops() {
        let (arch, net) = setup();
        let f = flow(&net, &arch, (0, 0), (5, 5), 0.0);
        let r = simulate_flows(&net, &[f]);
        assert_eq!(r.completion_s, 0.0);
    }

    #[test]
    fn flow_times_are_monotone_in_bytes() {
        let (arch, net) = setup();
        let small = flow(&net, &arch, (0, 0), (3, 3), 1e9);
        let big = flow(&net, &arch, (0, 0), (3, 3), 4e9);
        let r = simulate_flows(&net, &[small, big]);
        assert!(r.flow_times_s[0] <= r.flow_times_s[1]);
        assert_eq!(r.completion_s, r.flow_times_s[1]);
    }
}
