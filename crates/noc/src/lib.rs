//! Interconnect substrate (Sec. III + Sec. V-B2 of the paper).
//!
//! A [`Network`] enumerates every directed link of the template — on-chip
//! NoC links, D2D links where a hop crosses a chiplet boundary, and the
//! injection/ejection links of each DRAM controller — and provides
//! routing (XY on the mesh, dimension-order on the folded torus) plus
//! multicast trees (union of unicast paths, each link counted once, which
//! is how the evaluator honours the template's multicast capability).
//!
//! A [`TrafficMap`] accumulates bytes per link for one pipeline stage;
//! the evaluator turns it into link times (`bytes / bandwidth`), energy
//! (NoC vs D2D) and the Fig.-9-style heatmaps.
//!
//! # Example
//!
//! ```
//! use gemini_arch::presets;
//! use gemini_noc::{Network, TrafficMap};
//!
//! let arch = presets::g_arch_72();
//! let net = Network::new(&arch);
//! let mut traffic = TrafficMap::new(&net);
//! let mut path = Vec::new();
//! net.route_cores(arch.core_at(0, 0), arch.core_at(5, 5), &mut path);
//! traffic.add_path(&path, 1024.0);
//! assert_eq!(path.len(), 10); // XY route: 5 hops east + 5 south
//! assert!(traffic.total_hop_bytes() > 0.0);
//! ```

pub mod flowsim;
pub mod heatmap;
pub mod network;
pub mod packetsim;
pub mod traffic;

pub use flowsim::{analytic_bottleneck, simulate_flows, Flow, FlowSimResult, FlowSimWorkspace};
pub use heatmap::{Heatmap, HeatmapEntry};
pub use network::{Link, LinkId, LinkKind, Network, NodeId};
pub use packetsim::{simulate_packets, PacketSimConfig, PacketSimResult, PacketSimWorkspace};
pub use traffic::TrafficMap;
