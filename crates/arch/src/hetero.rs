//! Heterogeneous chiplet configurations (Sec. V-D of the paper).
//!
//! The paper's future-work section singles out "the heterogeneity of
//! chiplet" as a compelling research direction: *"Questions around
//! scheduling LP mapping on heterogeneous chiplets and, reciprocally,
//! exploring architectural designs for heterogeneous accelerators in the
//! context of LP mapping are of particular interest."* This module
//! implements that extension on top of the scalable template.
//!
//! A [`HeteroSpec`] assigns every computing chiplet of an [`ArchConfig`]
//! a [`CoreClass`] — a (MACs, GLB) resource point that overrides the
//! homogeneous per-core parameters. The mesh geometry, cut grid, NoC and
//! D2D bandwidths stay uniform (they are package-level properties); what
//! varies per chiplet is the compute/storage substance of its cores,
//! exactly the degree of freedom chiplet reuse gives a vendor (mix
//! previously-taped-out "big" and "little" compute dies in one package).
//!
//! The LP-SPM encoding is unchanged: partitions still split layers into
//! approximately equal workloads, so a *mapping* must compensate for
//! heterogeneity through the `CG` attribute — giving layers fewer big
//! cores or more little cores. The SA engine does this automatically
//! (its cost comes from the heterogeneity-aware evaluator), which is the
//! "scheduling LP mapping on heterogeneous chiplets" question the paper
//! poses. See `crates/bench/benches/hetero_explore.rs`.
//!
//! # Example
//!
//! ```
//! use gemini_arch::hetero::{CoreClass, HeteroSpec};
//! use gemini_arch::ArchConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 6x6 cores in 2x1 chiplets: west chiplet big cores, east little.
//! let arch = ArchConfig::builder().cores(6, 6).cuts(2, 1).build()?;
//! let spec = HeteroSpec::new(
//!     vec![
//!         CoreClass { macs: 2048, glb_bytes: 4 << 20 },
//!         CoreClass { macs: 512, glb_bytes: 1 << 20 },
//!     ],
//!     vec![0, 1],
//!     &arch,
//! )?;
//! assert!(spec.tops(&arch) > 0.0);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::area::{AreaModel, CoreArea, Die, DieKind};
use crate::config::ArchConfig;
use crate::geometry::CoreId;

/// Per-core compute/storage resources of one chiplet class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreClass {
    /// MACs in the PE array of one core.
    pub macs: u32,
    /// GLB capacity per core in bytes.
    pub glb_bytes: u64,
}

impl CoreClass {
    /// Peak int8 TOPS of one core of this class at `freq_ghz`.
    pub fn core_tops(&self, freq_ghz: f64) -> f64 {
        self.macs as f64 * 2.0 * freq_ghz / 1e3
    }
}

/// Errors from [`HeteroSpec::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeteroError {
    /// No classes were given.
    NoClasses,
    /// The chiplet-class list length does not equal the chiplet count.
    ChipletArity {
        /// Chiplets in the architecture.
        chiplets: u32,
        /// Entries provided.
        given: usize,
    },
    /// A chiplet references a class index that does not exist.
    BadClassIndex {
        /// Offending chiplet.
        chiplet: u32,
        /// The out-of-range index.
        class: u8,
    },
    /// A class has zero MACs or GLB.
    EmptyClass(usize),
}

impl std::fmt::Display for HeteroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeteroError::NoClasses => write!(f, "no core classes given"),
            HeteroError::ChipletArity { chiplets, given } => {
                write!(f, "{given} chiplet-class entries for {chiplets} chiplets")
            }
            HeteroError::BadClassIndex { chiplet, class } => {
                write!(f, "chiplet {chiplet} references unknown class {class}")
            }
            HeteroError::EmptyClass(i) => write!(f, "class {i} has zero MACs or GLB"),
        }
    }
}

impl std::error::Error for HeteroError {}

/// Per-chiplet core-class assignment over an [`ArchConfig`].
///
/// Chiplets are indexed row-major over the cut grid (the same order as
/// [`ArchConfig::chiplet_of`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroSpec {
    classes: Vec<CoreClass>,
    class_of_chiplet: Vec<u8>,
}

impl HeteroSpec {
    /// Builds and validates a heterogeneous assignment.
    ///
    /// # Errors
    ///
    /// Returns [`HeteroError`] when `class_of_chiplet` does not have one
    /// entry per chiplet of `arch`, references a missing class, or a
    /// class has zero resources.
    pub fn new(
        classes: Vec<CoreClass>,
        class_of_chiplet: Vec<u8>,
        arch: &ArchConfig,
    ) -> Result<Self, HeteroError> {
        if classes.is_empty() {
            return Err(HeteroError::NoClasses);
        }
        for (i, c) in classes.iter().enumerate() {
            if c.macs == 0 || c.glb_bytes == 0 {
                return Err(HeteroError::EmptyClass(i));
            }
        }
        let chiplets = arch.n_chiplets();
        if class_of_chiplet.len() != chiplets as usize {
            return Err(HeteroError::ChipletArity {
                chiplets,
                given: class_of_chiplet.len(),
            });
        }
        for (chiplet, &class) in class_of_chiplet.iter().enumerate() {
            if class as usize >= classes.len() {
                return Err(HeteroError::BadClassIndex {
                    chiplet: chiplet as u32,
                    class,
                });
            }
        }
        Ok(Self {
            classes,
            class_of_chiplet,
        })
    }

    /// A homogeneous spec replicating the architecture's own per-core
    /// parameters (useful as a baseline in comparisons).
    pub fn uniform(arch: &ArchConfig) -> Self {
        Self {
            classes: vec![CoreClass {
                macs: arch.macs_per_core(),
                glb_bytes: arch.glb_bytes(),
            }],
            class_of_chiplet: vec![0; arch.n_chiplets() as usize],
        }
    }

    /// The distinct core classes.
    pub fn classes(&self) -> &[CoreClass] {
        &self.classes
    }

    /// Class index of each chiplet (row-major cut-grid order).
    pub fn class_of_chiplet(&self) -> &[u8] {
        &self.class_of_chiplet
    }

    /// Class index of the chiplet containing `core`.
    pub fn class_of_core(&self, arch: &ArchConfig, core: CoreId) -> u8 {
        let chiplet = arch.chiplet_of(arch.coord(core));
        self.class_of_chiplet[chiplet as usize]
    }

    /// The [`CoreClass`] of `core`.
    pub fn core_class(&self, arch: &ArchConfig, core: CoreId) -> CoreClass {
        self.classes[self.class_of_core(arch, core) as usize]
    }

    /// Whether every chiplet uses the same class.
    pub fn is_uniform(&self) -> bool {
        self.class_of_chiplet.windows(2).all(|w| w[0] == w[1])
    }

    /// Peak int8 TOPS summed over all cores.
    pub fn tops(&self, arch: &ArchConfig) -> f64 {
        let (cx, cy) = arch.chiplet_dims();
        let cores_per_chiplet = (cx * cy) as f64;
        self.class_of_chiplet
            .iter()
            .map(|&c| cores_per_chiplet * self.classes[c as usize].core_tops(arch.freq_ghz()))
            .sum()
    }

    /// Throughput weight of each core relative to the fastest core
    /// (1.0 = fastest class). Mapping heuristics can use this to bias
    /// core-group sizes.
    pub fn core_weights(&self, arch: &ArchConfig) -> Vec<f64> {
        let max_macs = self
            .classes
            .iter()
            .map(|c| c.macs)
            .max()
            .expect("validated non-empty") as f64;
        arch.cores()
            .map(|id| self.core_class(arch, id).macs as f64 / max_macs)
            .collect()
    }

    /// Evaluates the per-die areas of the heterogeneous package: one
    /// [`Die`] entry per distinct (class, count) compute die plus the IO
    /// dies, using the same parametric model as the homogeneous path.
    pub fn area_dies(&self, arch: &ArchConfig, model: &AreaModel) -> Vec<Die> {
        let (cx, cy) = arch.chiplet_dims();
        let cores_per_chiplet = (cx * cy) as f64;
        let homog = model.evaluate(arch);

        if arch.is_monolithic() {
            // One die holding every class's cores plus integrated IO.
            let cores_area: f64 = self
                .class_of_chiplet
                .iter()
                .map(|&c| cores_per_chiplet * self.class_core_area(c as usize, arch, model).total())
                .sum();
            let io_logic = homog.total_silicon_mm2() - arch.n_cores() as f64 * homog.core.total();
            return vec![Die {
                kind: DieKind::Monolithic,
                area_mm2: cores_area + io_logic,
                count: 1,
            }];
        }

        let d2d_if = homog.d2d_per_interface;
        let d2d_area = arch.d2d_per_chiplet() as f64 * d2d_if;
        let mut dies: Vec<Die> = Vec::new();
        for class in 0..self.classes.len() {
            let count = self
                .class_of_chiplet
                .iter()
                .filter(|&&c| c as usize == class)
                .count() as u32;
            if count == 0 {
                continue;
            }
            let area =
                cores_per_chiplet * self.class_core_area(class, arch, model).total() + d2d_area;
            dies.push(Die {
                kind: DieKind::Compute,
                area_mm2: area,
                count,
            });
        }
        if let Some(io) = homog.io_chiplet_mm2 {
            dies.push(Die {
                kind: DieKind::Io,
                area_mm2: io,
                count: arch.n_io_chiplets(),
            });
        }
        dies
    }

    /// Core module areas for one class (router/misc follow the shared
    /// template; MAC and GLB follow the class).
    fn class_core_area(&self, class: usize, arch: &ArchConfig, model: &AreaModel) -> CoreArea {
        let c = self.classes[class];
        CoreArea {
            mac: c.macs as f64 * model.mm2_per_mac,
            glb: c.glb_bytes as f64 / (1024.0 * 1024.0) * model.mm2_per_mib_sram,
            router: model.router_base + arch.noc_bw() * model.router_per_gbps,
            misc: model.core_misc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn big_little() -> (ArchConfig, HeteroSpec) {
        let arch = ArchConfig::builder()
            .cores(6, 6)
            .cuts(2, 1)
            .build()
            .unwrap();
        let spec = HeteroSpec::new(
            vec![
                CoreClass {
                    macs: 2048,
                    glb_bytes: 4 << 20,
                },
                CoreClass {
                    macs: 512,
                    glb_bytes: 1 << 20,
                },
            ],
            vec![0, 1],
            &arch,
        )
        .unwrap();
        (arch, spec)
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let arch = ArchConfig::builder()
            .cores(6, 6)
            .cuts(2, 1)
            .build()
            .unwrap();
        assert_eq!(
            HeteroSpec::new(vec![], vec![], &arch),
            Err(HeteroError::NoClasses)
        );
        let one = vec![CoreClass {
            macs: 1024,
            glb_bytes: 1 << 20,
        }];
        assert!(matches!(
            HeteroSpec::new(one.clone(), vec![0], &arch),
            Err(HeteroError::ChipletArity {
                chiplets: 2,
                given: 1
            })
        ));
        assert!(matches!(
            HeteroSpec::new(one.clone(), vec![0, 3], &arch),
            Err(HeteroError::BadClassIndex {
                chiplet: 1,
                class: 3
            })
        ));
        assert_eq!(
            HeteroSpec::new(
                vec![CoreClass {
                    macs: 0,
                    glb_bytes: 1
                }],
                vec![0, 0],
                &arch
            ),
            Err(HeteroError::EmptyClass(0))
        );
    }

    #[test]
    fn class_of_core_follows_chiplet_membership() {
        let (arch, spec) = big_little();
        // West chiplet = columns 0..3 -> class 0; east -> class 1.
        assert_eq!(spec.class_of_core(&arch, arch.core_at(0, 0)), 0);
        assert_eq!(spec.class_of_core(&arch, arch.core_at(2, 5)), 0);
        assert_eq!(spec.class_of_core(&arch, arch.core_at(3, 0)), 1);
        assert_eq!(spec.class_of_core(&arch, arch.core_at(5, 5)), 1);
        assert_eq!(spec.core_class(&arch, arch.core_at(0, 0)).macs, 2048);
    }

    #[test]
    fn uniform_spec_matches_arch_tops() {
        let arch = presets::g_arch_72();
        let spec = HeteroSpec::uniform(&arch);
        assert!(spec.is_uniform());
        assert!((spec.tops(&arch) - arch.tops()).abs() < 1e-9);
    }

    #[test]
    fn big_little_tops_is_class_weighted() {
        let (arch, spec) = big_little();
        // 18 cores x 2048 + 18 cores x 512 MACs @ 2 ops @ 1 GHz.
        let expected = (18.0 * 2048.0 + 18.0 * 512.0) * 2.0 / 1e3;
        assert!((spec.tops(&arch) - expected).abs() < 1e-9);
        assert!(!spec.is_uniform());
    }

    #[test]
    fn core_weights_normalized_to_fastest() {
        let (arch, spec) = big_little();
        let w = spec.core_weights(&arch);
        assert_eq!(w.len(), 36);
        assert_eq!(w[0], 1.0, "west big core");
        assert_eq!(w[5], 0.25, "east little core is 512/2048");
    }

    #[test]
    fn hetero_area_lists_one_die_per_class() {
        let (arch, spec) = big_little();
        let dies = spec.area_dies(&arch, &AreaModel::default());
        let compute: Vec<_> = dies.iter().filter(|d| d.kind == DieKind::Compute).collect();
        assert_eq!(compute.len(), 2);
        assert!(
            compute[0].area_mm2 > compute[1].area_mm2,
            "big-core die is larger"
        );
        assert!(dies.iter().any(|d| d.kind == DieKind::Io));
    }

    #[test]
    fn uniform_area_matches_homogeneous_model() {
        let arch = presets::g_arch_72();
        let spec = HeteroSpec::uniform(&arch);
        let dies = spec.area_dies(&arch, &AreaModel::default());
        let total: f64 = dies.iter().map(|d| d.area_mm2 * d.count as f64).sum();
        let homog = AreaModel::default().evaluate(&arch).total_silicon_mm2();
        assert!(
            (total - homog).abs() < 1e-9,
            "hetero {total} vs homog {homog}"
        );
    }

    #[test]
    fn monolithic_hetero_area_single_die() {
        let arch = ArchConfig::builder()
            .cores(6, 6)
            .cuts(1, 1)
            .build()
            .unwrap();
        let spec = HeteroSpec::uniform(&arch);
        let dies = spec.area_dies(&arch, &AreaModel::default());
        assert_eq!(dies.len(), 1);
        assert_eq!(dies[0].kind, DieKind::Monolithic);
        let homog = AreaModel::default().evaluate(&arch).total_silicon_mm2();
        assert!((dies[0].area_mm2 - homog).abs() < 1e-9);
    }
}
