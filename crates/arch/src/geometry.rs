//! Core identifiers, coordinates and grid arrangement helpers.

use serde::{Deserialize, Serialize};

/// Identifier of a computing core: row-major index into the core grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId(pub u16);

impl CoreId {
    /// The index as `usize`.
    pub fn idx(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Grid coordinate of a core (or router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another coordinate.
    pub fn manhattan(&self, other: &Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Arranges `n` cores into the most square (x, y) grid with `x >= y`,
/// following the paper's DSE convention ("with 36 cores we configure
/// 6x6, for 18 cores 6x3").
pub fn arrange_cores(n: u32) -> (u32, u32) {
    assert!(n > 0, "cannot arrange zero cores");
    let mut best = (n, 1);
    let mut d = 1;
    while d * d <= n {
        if n % d == 0 {
            best = (n / d, d);
        }
        d += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrange_matches_paper_examples() {
        assert_eq!(arrange_cores(36), (6, 6));
        assert_eq!(arrange_cores(18), (6, 3));
        assert_eq!(arrange_cores(72), (9, 8));
        assert_eq!(arrange_cores(9), (3, 3));
        assert_eq!(arrange_cores(8), (4, 2));
        assert_eq!(arrange_cores(16), (4, 4));
        assert_eq!(arrange_cores(32), (8, 4));
        assert_eq!(arrange_cores(64), (8, 8));
        assert_eq!(arrange_cores(144), (12, 12));
    }

    #[test]
    fn arrange_primes_degenerate() {
        assert_eq!(arrange_cores(7), (7, 1));
        assert_eq!(arrange_cores(1), (1, 1));
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord::new(1, 2);
        let b = Coord::new(4, 0);
        assert_eq!(a.manhattan(&b), 5);
        assert_eq!(b.manhattan(&a), 5);
        assert_eq!(a.manhattan(&a), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CoreId(3).to_string(), "C3");
        assert_eq!(Coord::new(2, 5).to_string(), "(2,5)");
    }
}
