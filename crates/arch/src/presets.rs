//! Named architecture presets used throughout the paper's evaluation.

use crate::config::{ArchConfig, Topology};

/// S-Arch: the Simba baseline at 72 TOPs (Sec. VI-A4).
///
/// 36 chiplets of one 1024-MAC core each (6x6 package mesh), 1024 KB GLB
/// per core (per the Simba-series Magnet exploration), 2 GB/s-per-TOPs
/// DRAM via added IO dies, GRS D2D links at a quarter of the on-chip
/// link bandwidth.
///
/// ```
/// let a = gemini_arch::presets::simba_s_arch();
/// assert_eq!(a.n_chiplets(), 36);
/// assert_eq!(a.chiplet_dims(), (1, 1)); // one core per chiplet
/// ```
pub fn simba_s_arch() -> ArchConfig {
    ArchConfig::builder()
        .cores(6, 6)
        .cuts(6, 6)
        .noc_bw(32.0)
        .d2d_bw(8.0)
        .dram_bw(144.0)
        .glb_kb(1024)
        .macs_per_core(1024)
        .build()
        .expect("preset is valid")
}

/// G-Arch at 72 TOPs: the architecture Gemini's DSE finds
/// (Sec. VI-B1): `(2, 36, 144GB/s, 32GB/s, 16GB/s, 2MB, 1024)`.
///
/// ```
/// let a = gemini_arch::presets::g_arch_72();
/// assert_eq!(a.n_chiplets(), 2);
/// assert_eq!(a.n_cores(), 36);
/// assert_eq!(a.paper_tuple(), "(2, 36, 144GB/s, 32GB/s, 16GB/s, 2048KB, 1024)");
/// ```
pub fn g_arch_72() -> ArchConfig {
    ArchConfig::builder()
        .cores(6, 6)
        .cuts(2, 1)
        .noc_bw(32.0)
        .d2d_bw(16.0)
        .dram_bw(144.0)
        .glb_kb(2048)
        .macs_per_core(1024)
        .build()
        .expect("preset is valid")
}

/// T-Arch: a 120-core monolithic accelerator with Tenstorrent
/// Grayskull-like parameters on a folded-torus NoC (Sec. VI-B2).
///
/// ```
/// use gemini_arch::Topology;
/// let a = gemini_arch::presets::t_arch();
/// assert!(a.is_monolithic());
/// assert_eq!(a.topology(), Topology::FoldedTorus);
/// ```
pub fn t_arch() -> ArchConfig {
    ArchConfig::builder()
        .cores(12, 10)
        .cuts(1, 1)
        .topology(Topology::FoldedTorus)
        .noc_bw(64.0)
        .d2d_bw(16.0) // unused: monolithic
        .dram_bw(100.0)
        .glb_kb(1024)
        .macs_per_core(512)
        .build()
        .expect("preset is valid")
}

/// The Gemini-explored counterpart of [`t_arch`] (Sec. VI-B2):
/// `(6, 60, 480GB/s, 64GB/s, 32GB/s, 2MB, 2048)` on a folded torus.
///
/// ```
/// let a = gemini_arch::presets::g_arch_vs_tarch();
/// assert_eq!(a.n_chiplets(), 6);
/// // Roughly 2x T-Arch's computing power, as in the paper's setup.
/// assert!(a.tops() > 1.9 * gemini_arch::presets::t_arch().tops());
/// ```
pub fn g_arch_vs_tarch() -> ArchConfig {
    ArchConfig::builder()
        .cores(10, 6)
        .cuts(2, 3)
        .topology(Topology::FoldedTorus)
        .noc_bw(64.0)
        .d2d_bw(32.0)
        .dram_bw(480.0)
        .glb_kb(2048)
        .macs_per_core(2048)
        .build()
        .expect("preset is valid")
}

/// The four 128-TOPs architectures that are optimal under the four
/// objectives of Fig. 7, in the paper's left-to-right order:
/// energy-optimal, delay-optimal, MC-optimal, MC·E·D-optimal.
///
/// ```
/// for a in gemini_arch::presets::fig7_archs() {
///     assert!((125.0..135.0).contains(&a.tops()), "{}", a.paper_tuple());
/// }
/// ```
pub fn fig7_archs() -> [ArchConfig; 4] {
    [
        // (1, 16, 128GB/s, 32GB/s, None, 4MB, 4096)
        ArchConfig::builder()
            .cores(4, 4)
            .cuts(1, 1)
            .noc_bw(32.0)
            .dram_bw(128.0)
            .glb_kb(4096)
            .macs_per_core(4096)
            .build()
            .expect("preset is valid"),
        // (1, 8, 128GB/s, 32GB/s, None, 4MB, 8192)
        ArchConfig::builder()
            .cores(4, 2)
            .cuts(1, 1)
            .noc_bw(32.0)
            .dram_bw(128.0)
            .glb_kb(4096)
            .macs_per_core(8192)
            .build()
            .expect("preset is valid"),
        // (4, 32, 256GB/s, 64GB/s, 32GB/s, 2MB, 2048)
        ArchConfig::builder()
            .cores(8, 4)
            .cuts(2, 2)
            .noc_bw(64.0)
            .d2d_bw(32.0)
            .dram_bw(256.0)
            .glb_kb(2048)
            .macs_per_core(2048)
            .build()
            .expect("preset is valid"),
        // (2, 32, 128GB/s, 32GB/s, 16GB/s, 2MB, 2048)
        ArchConfig::builder()
            .cores(8, 4)
            .cuts(2, 1)
            .noc_bw(32.0)
            .d2d_bw(16.0)
            .dram_bw(128.0)
            .glb_kb(2048)
            .macs_per_core(2048)
            .build()
            .expect("preset is valid"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build() {
        let _ = simba_s_arch();
        let _ = g_arch_72();
        let _ = t_arch();
        let _ = g_arch_vs_tarch();
        let _ = fig7_archs();
    }

    #[test]
    fn simba_is_36_single_core_chiplets() {
        let a = simba_s_arch();
        assert_eq!(a.n_chiplets(), 36);
        assert_eq!(a.chiplet_dims(), (1, 1));
        assert!((a.tops() - 73.728).abs() < 0.01);
    }

    #[test]
    fn t_arch_is_torus_monolith() {
        let a = t_arch();
        assert!(a.is_monolithic());
        assert_eq!(a.topology(), Topology::FoldedTorus);
        assert_eq!(a.n_cores(), 120);
    }

    #[test]
    fn fig7_archs_are_128_tops_class() {
        for a in fig7_archs() {
            let tops = a.tops();
            assert!(
                (125.0..135.0).contains(&tops),
                "{} has {tops} TOPS",
                a.paper_tuple()
            );
        }
    }

    #[test]
    fn g_arch_vs_tarch_is_about_2x_tarch_tops() {
        // (6, 60, ..., 2048 MACs) is a ~246-TOPs design, roughly 2x the
        // 120-core T-Arch as in the paper's Sec. VI-B2 setup.
        assert!(g_arch_vs_tarch().tops() > 1.9 * t_arch().tops());
    }
}
