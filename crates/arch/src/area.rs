//! Silicon area model.
//!
//! The paper takes analog-IP areas from datasheets and logic areas from
//! their chip's Verilog; neither is available, so this is a parametric
//! 12 nm model calibrated to the one quantitative anchor the paper gives:
//! under the Simba-granularity architecture "nearly 40%" of compute-die
//! area goes to D2D interfaces (Sec. VI-B1). All constants are public so
//! experiments can re-calibrate.

use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;

/// Kind of die in the package.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DieKind {
    /// Computing chiplet (cores + D2D).
    Compute,
    /// IO chiplet (DRAM PHY + controller + other IO + D2D).
    Io,
    /// Single monolithic die (cores + integrated IO, no D2D).
    Monolithic,
}

/// One die type and how many instances the package holds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Die {
    /// Die kind.
    pub kind: DieKind,
    /// Silicon area of one instance in mm^2.
    pub area_mm2: f64,
    /// Instances in the package.
    pub count: u32,
}

/// Area of one computing core, by module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CoreArea {
    /// PE array.
    pub mac: f64,
    /// Global buffer SRAM.
    pub glb: f64,
    /// Router + DMA (scales with NoC bandwidth).
    pub router: f64,
    /// Control + vector unit.
    pub misc: f64,
}

impl CoreArea {
    /// Total core area in mm^2.
    pub fn total(&self) -> f64 {
        self.mac + self.glb + self.router + self.misc
    }
}

/// Full area breakdown of an architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Per-core module areas.
    pub core: CoreArea,
    /// D2D PHY+controller area per interface (0 for monolithic).
    pub d2d_per_interface: f64,
    /// Area of one computing chiplet.
    pub compute_chiplet_mm2: f64,
    /// Area of one IO chiplet (`None` for monolithic designs).
    pub io_chiplet_mm2: Option<f64>,
    /// All die types in the package.
    pub dies: Vec<Die>,
    /// Fraction of compute-die area spent on D2D interfaces.
    pub d2d_fraction: f64,
}

impl AreaBreakdown {
    /// Total silicon area of the package in mm^2.
    pub fn total_silicon_mm2(&self) -> f64 {
        self.dies.iter().map(|d| d.area_mm2 * d.count as f64).sum()
    }
}

/// Parametric 12 nm area model. All values in mm^2 (or mm^2 per unit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Area per int8 MAC (datapath + pipeline registers).
    pub mm2_per_mac: f64,
    /// Area per MiB of GLB SRAM.
    pub mm2_per_mib_sram: f64,
    /// Router + DMA base area.
    pub router_base: f64,
    /// Router + DMA area per GB/s of NoC link bandwidth.
    pub router_per_gbps: f64,
    /// Control + vector unit area per core.
    pub core_misc: f64,
    /// D2D interface (PHY + controller) base area.
    pub d2d_base: f64,
    /// D2D interface area per GB/s of D2D bandwidth.
    pub d2d_per_gbps: f64,
    /// DRAM PHY area per 32 GB/s channel.
    pub dram_phy_per_channel: f64,
    /// DRAM channel granularity in GB/s (GDDR6 die: 32 GB/s).
    pub dram_channel_gbps: f64,
    /// DRAM controller area per IO chiplet.
    pub dram_ctrl: f64,
    /// Host/other IO (PCIe etc.) area per IO chiplet.
    pub other_io: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            mm2_per_mac: 8.0e-4,
            mm2_per_mib_sram: 0.8,
            router_base: 0.1,
            router_per_gbps: 1.5e-3,
            core_misc: 0.3,
            d2d_base: 0.28,
            d2d_per_gbps: 2.0e-3,
            dram_phy_per_channel: 1.2,
            dram_channel_gbps: 32.0,
            dram_ctrl: 0.5,
            other_io: 2.0,
        }
    }
}

impl AreaModel {
    /// Evaluates the area of every die in the package.
    pub fn evaluate(&self, arch: &ArchConfig) -> AreaBreakdown {
        let core = CoreArea {
            mac: arch.macs_per_core() as f64 * self.mm2_per_mac,
            glb: arch.glb_bytes() as f64 / (1024.0 * 1024.0) * self.mm2_per_mib_sram,
            router: self.router_base + arch.noc_bw() * self.router_per_gbps,
            misc: self.core_misc,
        };
        let io_logic = self.io_logic_area(arch);

        if arch.is_monolithic() {
            let die = arch.n_cores() as f64 * core.total() + io_logic;
            return AreaBreakdown {
                core,
                d2d_per_interface: 0.0,
                compute_chiplet_mm2: die,
                io_chiplet_mm2: None,
                dies: vec![Die {
                    kind: DieKind::Monolithic,
                    area_mm2: die,
                    count: 1,
                }],
                d2d_fraction: 0.0,
            };
        }

        let d2d_if = self.d2d_base + arch.d2d_bw() * self.d2d_per_gbps;
        let (cx, cy) = arch.chiplet_dims();
        let cores_per_chiplet = (cx * cy) as f64;
        let d2d_area = arch.d2d_per_chiplet() as f64 * d2d_if;
        let compute = cores_per_chiplet * core.total() + d2d_area;

        // IO chiplet: its D2D interfaces face one grid edge (as many
        // interfaces as ports on its band).
        let ports = arch.dram_ports(0).len() as f64;
        let io = io_logic / arch.n_io_chiplets() as f64 + ports * d2d_if;

        AreaBreakdown {
            core,
            d2d_per_interface: d2d_if,
            compute_chiplet_mm2: compute,
            io_chiplet_mm2: Some(io),
            dies: vec![
                Die {
                    kind: DieKind::Compute,
                    area_mm2: compute,
                    count: arch.n_chiplets(),
                },
                Die {
                    kind: DieKind::Io,
                    area_mm2: io,
                    count: arch.n_io_chiplets(),
                },
            ],
            d2d_fraction: d2d_area / compute,
        }
    }

    /// DRAM PHY + controller + other IO logic for the whole package.
    fn io_logic_area(&self, arch: &ArchConfig) -> f64 {
        let channels = (arch.dram_bw() / self.dram_channel_gbps).ceil();
        channels * self.dram_phy_per_channel
            + arch.dram_count() as f64 * (self.dram_ctrl + self.other_io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn simba_granularity_spends_about_40pct_on_d2d() {
        // The paper's calibration anchor (Sec. VI-B1): at Simba's chiplet
        // granularity "an excessive amount of chip area is used for D2D
        // interfaces (nearly 40%)".
        let bd = AreaModel::default().evaluate(&presets::simba_s_arch());
        assert!(
            (0.30..0.50).contains(&bd.d2d_fraction),
            "D2D fraction {:.2} should be near 0.4",
            bd.d2d_fraction
        );
    }

    #[test]
    fn g_arch_spends_much_less_on_d2d() {
        let bd = AreaModel::default().evaluate(&presets::g_arch_72());
        assert!(bd.d2d_fraction < 0.2, "got {}", bd.d2d_fraction);
    }

    #[test]
    fn monolithic_has_no_d2d_and_one_die() {
        let arch = crate::ArchConfig::builder()
            .cores(6, 6)
            .cuts(1, 1)
            .build()
            .unwrap();
        let bd = AreaModel::default().evaluate(&arch);
        assert_eq!(bd.d2d_fraction, 0.0);
        assert_eq!(bd.dies.len(), 1);
        assert!(bd.io_chiplet_mm2.is_none());
        assert_eq!(bd.dies[0].kind, DieKind::Monolithic);
    }

    #[test]
    fn total_silicon_consistent() {
        let arch = presets::g_arch_72();
        let bd = AreaModel::default().evaluate(&arch);
        let manual = bd.compute_chiplet_mm2 * arch.n_chiplets() as f64
            + bd.io_chiplet_mm2.unwrap() * arch.n_io_chiplets() as f64;
        assert!((bd.total_silicon_mm2() - manual).abs() < 1e-9);
    }

    #[test]
    fn finer_chiplets_cost_more_total_d2d_area() {
        // Same 36-core fabric cut into 2 vs 36 chiplets: the 36-way cut
        // must burn strictly more silicon on D2D.
        let coarse = crate::ArchConfig::builder()
            .cores(6, 6)
            .cuts(2, 1)
            .build()
            .unwrap();
        let fine = crate::ArchConfig::builder()
            .cores(6, 6)
            .cuts(6, 6)
            .build()
            .unwrap();
        let m = AreaModel::default();
        let a = m.evaluate(&coarse);
        let b = m.evaluate(&fine);
        let d2d_total =
            |bd: &AreaBreakdown, n: u32| bd.d2d_fraction * bd.compute_chiplet_mm2 * n as f64;
        assert!(d2d_total(&b, 36) > d2d_total(&a, 2) * 3.0);
    }

    #[test]
    fn bigger_glb_means_bigger_core() {
        let small = crate::ArchConfig::builder().glb_kb(256).build().unwrap();
        let big = crate::ArchConfig::builder().glb_kb(8192).build().unwrap();
        let m = AreaModel::default();
        assert!(
            m.evaluate(&big).core.glb > 10.0 * m.evaluate(&small).core.glb,
            "GLB area must scale with capacity"
        );
    }
}
