//! Architecture configuration and validation.
//!
//! [`ArchConfig`] captures exactly the configurable parameters the paper
//! lists in Sec. III: NoC bandwidth, D2D bandwidth, total DRAM bandwidth,
//! core counts in X and Y, chiplet divisions XCut and YCut, MACs per core
//! and GLB size per core — plus the NoC topology (mesh by default, folded
//! torus for the T-Arch experiment of Sec. VI-B2).

use serde::{Deserialize, Serialize};

use crate::geometry::{Coord, CoreId};

/// NoC topology of the template.
///
/// The paper defaults to a mesh (point-to-point parallel D2D links) and
/// demonstrates generality on a folded torus (Sec. VI-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Topology {
    /// 2-D mesh with XY routing.
    #[default]
    Mesh,
    /// Folded 2-D torus with dimension-order routing.
    FoldedTorus,
}

/// Errors from [`ArchConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArchError {
    /// XCut / YCut must divide the core counts (invalid candidates are
    /// "deemed invalid" in the paper's DSE).
    CutMismatch {
        /// Which axis failed.
        axis: char,
        /// Cores along the axis.
        cores: u32,
        /// Requested cuts.
        cuts: u32,
    },
    /// A parameter that must be positive was zero or negative.
    NonPositive(&'static str),
}

impl std::fmt::Display for ArchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchError::CutMismatch { axis, cores, cuts } => {
                write!(
                    f,
                    "{axis}Cut {cuts} does not divide {cores} cores on the {axis} axis"
                )
            }
            ArchError::NonPositive(what) => write!(f, "{what} must be positive"),
        }
    }
}

impl std::error::Error for ArchError {}

/// A fully-validated architecture candidate.
///
/// Construct through [`ArchConfig::builder`]. The paper abbreviates an
/// architecture as `(ChipletNum, CoreNum, DRAM_BW, NoC_BW, D2D_BW,
/// GBUF/Core, MAC/Core)`; [`ArchConfig::paper_tuple`] prints that form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    x_cores: u32,
    y_cores: u32,
    xcut: u32,
    ycut: u32,
    noc_bw: f64,
    d2d_bw: f64,
    dram_bw: f64,
    dram_count: u32,
    macs_per_core: u32,
    glb_bytes: u64,
    freq_ghz: f64,
    topology: Topology,
}

impl ArchConfig {
    /// Starts a builder with the paper's defaults (1 GHz, mesh, 2 DRAM
    /// stacks).
    pub fn builder() -> ArchConfigBuilder {
        ArchConfigBuilder::default()
    }

    /// Cores along X.
    pub fn x_cores(&self) -> u32 {
        self.x_cores
    }

    /// Cores along Y.
    pub fn y_cores(&self) -> u32 {
        self.y_cores
    }

    /// Chiplet divisions along X.
    pub fn xcut(&self) -> u32 {
        self.xcut
    }

    /// Chiplet divisions along Y.
    pub fn ycut(&self) -> u32 {
        self.ycut
    }

    /// Per-link NoC bandwidth in GB/s.
    pub fn noc_bw(&self) -> f64 {
        self.noc_bw
    }

    /// Per-link D2D bandwidth in GB/s.
    pub fn d2d_bw(&self) -> f64 {
        self.d2d_bw
    }

    /// Total DRAM bandwidth in GB/s.
    pub fn dram_bw(&self) -> f64 {
        self.dram_bw
    }

    /// Number of DRAM stacks / controllers (each owns `dram_bw /
    /// dram_count` of bandwidth).
    pub fn dram_count(&self) -> u32 {
        self.dram_count
    }

    /// MACs in the PE array of one core.
    pub fn macs_per_core(&self) -> u32 {
        self.macs_per_core
    }

    /// Global-buffer capacity per core in bytes.
    pub fn glb_bytes(&self) -> u64 {
        self.glb_bytes
    }

    /// Operating frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// NoC topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Total computing cores.
    pub fn n_cores(&self) -> u32 {
        self.x_cores * self.y_cores
    }

    /// Total computing chiplets.
    pub fn n_chiplets(&self) -> u32 {
        self.xcut * self.ycut
    }

    /// Whether the design is a single monolithic die (no D2D links; IO
    /// integrated on-die; cheap fan-out packaging).
    pub fn is_monolithic(&self) -> bool {
        self.n_chiplets() == 1
    }

    /// Cores per chiplet along (x, y).
    pub fn chiplet_dims(&self) -> (u32, u32) {
        (self.x_cores / self.xcut, self.y_cores / self.ycut)
    }

    /// Peak int8 throughput in TOPS (2 ops per MAC).
    pub fn tops(&self) -> f64 {
        self.n_cores() as f64 * self.macs_per_core as f64 * 2.0 * self.freq_ghz / 1e3
    }

    /// Chiplet index (0-based, row-major over the cut grid) containing
    /// the given coordinate.
    pub fn chiplet_of(&self, c: Coord) -> u32 {
        let (cx, cy) = self.chiplet_dims();
        let gx = c.x as u32 / cx;
        let gy = c.y as u32 / cy;
        gy * self.xcut + gx
    }

    /// Whether the horizontal link between `(x, y)` and `(x+1, y)`
    /// crosses a chiplet boundary.
    pub fn is_d2d_h(&self, x: u32) -> bool {
        if self.is_monolithic() {
            return false;
        }
        let (cx, _) = self.chiplet_dims();
        (x + 1) % cx == 0
    }

    /// Whether the vertical link between `(x, y)` and `(x, y+1)`
    /// crosses a chiplet boundary.
    pub fn is_d2d_v(&self, y: u32) -> bool {
        if self.is_monolithic() {
            return false;
        }
        let (_, cy) = self.chiplet_dims();
        (y + 1) % cy == 0
    }

    /// Converts a core id to its coordinate.
    pub fn coord(&self, id: CoreId) -> Coord {
        Coord {
            x: (id.0 as u32 % self.x_cores) as u16,
            y: (id.0 as u32 / self.x_cores) as u16,
        }
    }

    /// Converts a coordinate to a core id.
    pub fn core_at(&self, x: u32, y: u32) -> CoreId {
        debug_assert!(x < self.x_cores && y < self.y_cores);
        CoreId((y * self.x_cores + x) as u16)
    }

    /// All core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.n_cores() as u16).map(CoreId)
    }

    /// D2D interfaces on one computing chiplet. Per the template, each
    /// side carries as many interfaces as it has cores; monolithic
    /// designs have none.
    pub fn d2d_per_chiplet(&self) -> u32 {
        if self.is_monolithic() {
            0
        } else {
            let (cx, cy) = self.chiplet_dims();
            2 * (cx + cy)
        }
    }

    /// Number of IO chiplets (one per DRAM stack; merged on-die for
    /// monolithic designs).
    pub fn n_io_chiplets(&self) -> u32 {
        if self.is_monolithic() {
            0
        } else {
            self.dram_count
        }
    }

    /// Edge cores that DRAM `d` attaches to. DRAM stacks alternate
    /// between the west (even) and east (odd) edges; each side is split
    /// into equal row bands among its stacks, mirroring the template's
    /// "DRAM controller connected to multiple routers" (Sec. III).
    pub fn dram_ports(&self, d: u32) -> Vec<Coord> {
        assert!(d < self.dram_count, "DRAM {d} out of range");
        let west = self.dram_count.div_ceil(2);
        let (side_count, nth, x) = if d % 2 == 0 {
            (west, d / 2, 0)
        } else {
            (self.dram_count / 2, d / 2, self.x_cores - 1)
        };
        let rows = self.y_cores;
        let start = nth * rows / side_count;
        let end = (nth + 1) * rows / side_count;
        (start..end)
            .map(|y| Coord {
                x: x as u16,
                y: y as u16,
            })
            .collect()
    }

    /// The paper's architecture tuple: `(ChipletNum, CoreNum, DRAM_BW,
    /// NoC_BW, D2D_BW, GBUF/Core, MAC/Core)`.
    pub fn paper_tuple(&self) -> String {
        let d2d = if self.is_monolithic() {
            "None".to_string()
        } else {
            format!("{}GB/s", self.d2d_bw)
        };
        format!(
            "({}, {}, {}GB/s, {}GB/s, {}, {}KB, {})",
            self.n_chiplets(),
            self.n_cores(),
            self.dram_bw,
            self.noc_bw,
            d2d,
            self.glb_bytes / 1024,
            self.macs_per_core
        )
    }
}

impl std::fmt::Display for ArchConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.paper_tuple())
    }
}

/// Builder for [`ArchConfig`]; all setters are chainable.
#[derive(Debug, Clone)]
pub struct ArchConfigBuilder {
    x_cores: u32,
    y_cores: u32,
    xcut: u32,
    ycut: u32,
    noc_bw: f64,
    d2d_bw: f64,
    dram_bw: f64,
    dram_count: u32,
    macs_per_core: u32,
    glb_bytes: u64,
    freq_ghz: f64,
    topology: Topology,
}

impl Default for ArchConfigBuilder {
    fn default() -> Self {
        Self {
            x_cores: 6,
            y_cores: 6,
            xcut: 1,
            ycut: 1,
            noc_bw: 32.0,
            d2d_bw: 16.0,
            dram_bw: 144.0,
            dram_count: 2,
            macs_per_core: 1024,
            glb_bytes: 2 * 1024 * 1024,
            freq_ghz: 1.0,
            topology: Topology::Mesh,
        }
    }
}

impl ArchConfigBuilder {
    /// Sets the core grid dimensions (X, Y).
    pub fn cores(mut self, x: u32, y: u32) -> Self {
        self.x_cores = x;
        self.y_cores = y;
        self
    }

    /// Sets the chiplet divisions (XCut, YCut).
    pub fn cuts(mut self, xcut: u32, ycut: u32) -> Self {
        self.xcut = xcut;
        self.ycut = ycut;
        self
    }

    /// Sets per-link NoC bandwidth (GB/s).
    pub fn noc_bw(mut self, gbps: f64) -> Self {
        self.noc_bw = gbps;
        self
    }

    /// Sets per-link D2D bandwidth (GB/s).
    pub fn d2d_bw(mut self, gbps: f64) -> Self {
        self.d2d_bw = gbps;
        self
    }

    /// Sets total DRAM bandwidth (GB/s).
    pub fn dram_bw(mut self, gbps: f64) -> Self {
        self.dram_bw = gbps;
        self
    }

    /// Sets the number of DRAM stacks.
    pub fn dram_count(mut self, n: u32) -> Self {
        self.dram_count = n;
        self
    }

    /// Sets MACs per core.
    pub fn macs_per_core(mut self, n: u32) -> Self {
        self.macs_per_core = n;
        self
    }

    /// Sets GLB capacity per core in KiB.
    pub fn glb_kb(mut self, kb: u64) -> Self {
        self.glb_bytes = kb * 1024;
        self
    }

    /// Sets the operating frequency in GHz.
    pub fn freq_ghz(mut self, f: f64) -> Self {
        self.freq_ghz = f;
        self
    }

    /// Sets the NoC topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::CutMismatch`] if XCut/YCut do not divide the
    /// core grid (such DSE candidates are invalid per Table I), or
    /// [`ArchError::NonPositive`] for zero-valued parameters.
    pub fn build(self) -> Result<ArchConfig, ArchError> {
        if self.x_cores == 0 || self.y_cores == 0 {
            return Err(ArchError::NonPositive("core count"));
        }
        if self.xcut == 0 || self.ycut == 0 {
            return Err(ArchError::NonPositive("cut count"));
        }
        if self.macs_per_core == 0 {
            return Err(ArchError::NonPositive("MACs per core"));
        }
        if self.glb_bytes == 0 {
            return Err(ArchError::NonPositive("GLB size"));
        }
        if self.noc_bw <= 0.0 || self.d2d_bw <= 0.0 || self.dram_bw <= 0.0 || self.freq_ghz <= 0.0 {
            return Err(ArchError::NonPositive("bandwidth/frequency"));
        }
        if self.dram_count == 0 {
            return Err(ArchError::NonPositive("DRAM count"));
        }
        if self.x_cores % self.xcut != 0 {
            return Err(ArchError::CutMismatch {
                axis: 'X',
                cores: self.x_cores,
                cuts: self.xcut,
            });
        }
        if self.y_cores % self.ycut != 0 {
            return Err(ArchError::CutMismatch {
                axis: 'Y',
                cores: self.y_cores,
                cuts: self.ycut,
            });
        }
        Ok(ArchConfig {
            x_cores: self.x_cores,
            y_cores: self.y_cores,
            xcut: self.xcut,
            ycut: self.ycut,
            noc_bw: self.noc_bw,
            d2d_bw: self.d2d_bw,
            dram_bw: self.dram_bw,
            dram_count: self.dram_count,
            macs_per_core: self.macs_per_core,
            glb_bytes: self.glb_bytes,
            freq_ghz: self.freq_ghz,
            topology: self.topology,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch_2x2() -> ArchConfig {
        ArchConfig::builder()
            .cores(6, 6)
            .cuts(2, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_cuts() {
        let r = ArchConfig::builder().cores(6, 6).cuts(4, 1).build();
        assert!(matches!(r, Err(ArchError::CutMismatch { axis: 'X', .. })));
        let r = ArchConfig::builder().cores(6, 6).cuts(1, 5).build();
        assert!(matches!(r, Err(ArchError::CutMismatch { axis: 'Y', .. })));
    }

    #[test]
    fn builder_rejects_zero() {
        assert!(ArchConfig::builder().cores(0, 6).build().is_err());
        assert!(ArchConfig::builder().macs_per_core(0).build().is_err());
    }

    #[test]
    fn tops_matches_paper_simba_point() {
        // 36 cores x 1024 MACs x 2 ops @1GHz = 73.7 TOPS ("72 TOPs" in
        // the paper's rounding).
        let a = arch_2x2();
        assert!((a.tops() - 73.728).abs() < 0.01);
    }

    #[test]
    fn chiplet_membership() {
        let a = arch_2x2();
        assert_eq!(a.chiplet_dims(), (3, 3));
        assert_eq!(a.chiplet_of(Coord { x: 0, y: 0 }), 0);
        assert_eq!(a.chiplet_of(Coord { x: 3, y: 0 }), 1);
        assert_eq!(a.chiplet_of(Coord { x: 0, y: 3 }), 2);
        assert_eq!(a.chiplet_of(Coord { x: 5, y: 5 }), 3);
    }

    #[test]
    fn d2d_boundaries() {
        let a = arch_2x2();
        assert!(a.is_d2d_h(2), "link between col 2 and 3 crosses the cut");
        assert!(!a.is_d2d_h(1));
        assert!(a.is_d2d_v(2));
        assert!(!a.is_d2d_v(3));
        let mono = ArchConfig::builder()
            .cores(6, 6)
            .cuts(1, 1)
            .build()
            .unwrap();
        assert!(!mono.is_d2d_h(2));
        assert!(mono.is_monolithic());
        assert_eq!(mono.d2d_per_chiplet(), 0);
    }

    #[test]
    fn coord_roundtrip() {
        let a = arch_2x2();
        for id in a.cores() {
            let c = a.coord(id);
            assert_eq!(a.core_at(c.x as u32, c.y as u32), id);
        }
    }

    #[test]
    fn dram_ports_cover_both_edges() {
        let a = arch_2x2();
        let p0 = a.dram_ports(0);
        let p1 = a.dram_ports(1);
        assert!(p0.iter().all(|c| c.x == 0));
        assert!(p1.iter().all(|c| c.x == 5));
        assert_eq!(p0.len(), 6);
        assert_eq!(p1.len(), 6);
    }

    #[test]
    fn dram_ports_band_split_with_four_stacks() {
        let a = ArchConfig::builder()
            .cores(8, 8)
            .cuts(2, 2)
            .dram_count(4)
            .build()
            .unwrap();
        let p0 = a.dram_ports(0);
        let p2 = a.dram_ports(2);
        assert_eq!(p0.len(), 4);
        assert_eq!(p2.len(), 4);
        assert!(p0.iter().all(|c| c.y < 4));
        assert!(p2.iter().all(|c| c.y >= 4));
    }

    #[test]
    fn paper_tuple_format() {
        let a = crate::presets::g_arch_72();
        assert_eq!(
            a.paper_tuple(),
            "(2, 36, 144GB/s, 32GB/s, 16GB/s, 2048KB, 1024)"
        );
        let mono = ArchConfig::builder()
            .cores(4, 4)
            .cuts(1, 1)
            .build()
            .unwrap();
        assert!(mono.paper_tuple().contains("None"));
    }

    #[test]
    fn d2d_interface_count() {
        let a = arch_2x2();
        // 3x3 chiplet: 2*(3+3) = 12 interfaces.
        assert_eq!(a.d2d_per_chiplet(), 12);
    }
}
