//! Scalable hardware template (Sec. III of the paper).
//!
//! The template is a 2-D mesh of computing cores split into
//! `XCut x YCut` computing chiplets, plus IO chiplets hosting DRAM
//! controllers on the west/east edges. Every NoC hop that crosses a
//! chiplet boundary traverses a D2D (die-to-die) interface with its own
//! bandwidth and energy characteristics.
//!
//! This crate owns the *static* description: configuration and
//! validation ([`ArchConfig`]), geometry (core coordinates, chiplet
//! membership, D2D boundaries, DRAM attach points) and the silicon area
//! model ([`area`]). Traffic and timing live in `gemini-noc` /
//! `gemini-sim`; monetary cost in `gemini-cost`.
//!
//! # Example
//!
//! ```
//! // The paper's explored 72-TOPs architecture: 2 chiplets, 36 cores,
//! // 144 GB/s DRAM, 32 GB/s NoC links, 16 GB/s D2D, 2 MB GLB, 1024 MACs.
//! let arch = gemini_arch::presets::g_arch_72();
//! assert_eq!(arch.n_cores(), 36);
//! assert_eq!(arch.n_chiplets(), 2);
//! assert!((arch.tops() - 73.7).abs() < 1.0);
//! ```

#![deny(missing_docs)]

pub mod area;
pub mod config;
pub mod geometry;
pub mod hetero;
pub mod presets;

pub use area::{AreaBreakdown, AreaModel, Die, DieKind};
pub use config::{ArchConfig, ArchConfigBuilder, ArchError, Topology};
pub use geometry::{arrange_cores, Coord, CoreId};
pub use hetero::{CoreClass, HeteroError, HeteroSpec};
