//! DNN workload substrate for the Gemini framework.
//!
//! This crate provides everything the mapping engine needs to know about a
//! DNN *workload*: a layer intermediate representation ([`Layer`],
//! [`LayerKind`]), four-dimensional output regions with halo-aware input
//! inference ([`Region`]), a directed-acyclic-graph container ([`Dnn`]) and
//! a programmatic model zoo ([`zoo`]) covering the networks evaluated in
//! the paper (ResNet-50, ResNeXt-50, Inception-ResNet-v1, PNASNet,
//! GoogLeNet, Transformer).
//!
//! All tensors are `int8` (1 byte/element), matching the Simba baseline.
//!
//! # Example
//!
//! ```
//! use gemini_model::zoo;
//!
//! let dnn = zoo::resnet50();
//! // ResNet-50 performs ~4.1 GMACs per 224x224 sample.
//! let gmacs = dnn.total_macs(1) as f64 / 1e9;
//! assert!((3.5..4.5).contains(&gmacs), "got {gmacs}");
//! ```

#![deny(missing_docs)]

pub mod graph;
pub mod layer;
pub mod region;
pub mod zoo;

pub use graph::{Dnn, DnnBuilder, DnnSummary, LayerId};
pub use layer::{ActKind, ConvParams, Layer, LayerKind, MatmulOperand, PoolKind, PoolParams};
pub use region::{split_dim, FmapShape, Range1, Region};

/// Bytes per tensor element. The framework models int8 inference end to
/// end (the Simba baseline is an int8 accelerator).
pub const BYTES_PER_ELEM: u64 = 1;
