//! Programmatic model zoo.
//!
//! The networks evaluated in the paper (Sec. VI-A3): ResNet-50, ResNeXt-50
//! (32x4d), Inception-ResNet-v1, PNASNet, Transformer — plus GoogLeNet
//! (used in the chiplet-reuse study of Fig. 8) and a couple of small
//! synthetic networks for tests and examples.
//!
//! Every builder constructs the graph layer by layer through the
//! validating [`DnnBuilder`], so kernel/stride/shape arithmetic is checked
//! at construction time.

mod classic;
pub mod decoder;
mod inception;
mod pnasnet;
mod resnet;
mod transformer;

pub use classic::{densenet121, efficientnet_b0, mobilenet_v2, vgg16};
pub use decoder::{decode_step, decode_tiny_spec, gpt2_spec, DecodeSpec, KvDtype};
pub use inception::{googlenet, inception_resnet_v1};
pub use pnasnet::pnasnet;
pub use resnet::{resnet50, resnext50};
pub use transformer::{bert_base, transformer_base, transformer_large, transformer_with};

use crate::graph::{Dnn, DnnBuilder, LayerId};
use crate::layer::{ActKind, ConvParams, LayerKind, PoolKind, PoolParams};
use crate::region::FmapShape;

/// The five workloads of the paper's overall comparison (Fig. 5):
/// ResNet-50, ResNeXt-50, Inception-ResNet-v1, PNASNet and Transformer.
///
/// ```
/// let ws = gemini_model::zoo::paper_workloads();
/// assert_eq!(ws.len(), 5);
/// // Every entry round-trips through `by_name` via its own name.
/// for d in &ws {
///     assert!(gemini_model::zoo::by_name(d.name()).is_some());
/// }
/// ```
pub fn paper_workloads() -> Vec<Dnn> {
    vec![
        resnet50(),
        resnext50(),
        inception_resnet_v1(),
        pnasnet(),
        transformer_base(),
    ]
}

/// A zoo entry: the graph, how its working set behaves, and the alias
/// spellings that resolve to it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The workload graph.
    pub graph: Dnn,
    /// Whether the working set is fixed or position-dependent.
    pub kind: WorkloadKind,
    /// The spellings [`by_name`] resolves to this entry (the first is
    /// the canonical base name).
    pub aliases: &'static [&'static str],
}

/// How a workload's working set behaves across invocations — the tag
/// evaluators use to tell steady-state workloads from decode steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Fixed working set (CNNs, encoder transformers).
    Static,
    /// One LLM decode step: the KV cache carried in the spec makes the
    /// working set grow with sequence position.
    Decode(DecodeSpec),
}

const RN50_ALIASES: &[&str] = &["rn-50", "rn50", "resnet50", "resnet-50"];
const RNX_ALIASES: &[&str] = &["rnx", "resnext", "resnext50", "resnext-50"];
const IRES_ALIASES: &[&str] = &["ires", "inception-resnet", "inception-resnet-v1"];
const PNAS_ALIASES: &[&str] = &["pnas", "pnasnet"];
const TF_ALIASES: &[&str] = &["tf", "transformer", "transformer-base"];
const TF_LARGE_ALIASES: &[&str] = &["tf-large", "transformer-large"];
const GN_ALIASES: &[&str] = &["gn", "googlenet"];
const DN121_ALIASES: &[&str] = &["dn-121", "densenet", "densenet121", "densenet-121"];
const MBV2_ALIASES: &[&str] = &["mbv2", "mobilenet", "mobilenetv2", "mobilenet-v2"];
const VGG_ALIASES: &[&str] = &["vgg", "vgg16", "vgg-16"];
const EFFNET_ALIASES: &[&str] = &["effnet", "effnet-b0", "efficientnet", "efficientnet-b0"];
const BERT_ALIASES: &[&str] = &["bert", "bert-base"];
const TWO_CONV_ALIASES: &[&str] = &["two-conv", "twoconv"];
const TINY_RESNET_ALIASES: &[&str] = &["tiny-resnet", "tinyresnet"];
const GPT2_DECODE_ALIASES: &[&str] = &["gpt2-decode", "gpt2"];
const DECODE_TINY_ALIASES: &[&str] = &["decode-tiny", "tiny-decode"];

/// Looks a workload up by the abbreviation used in the paper's figures.
///
/// Lookup is case- and separator-insensitive: names are lowercased and
/// `_`, ` ` and `.` all normalize to `-`, so `bert-base`, `BERT_base`
/// and `Bert Base` resolve to the same model. Every zoo constructor's
/// own [`Dnn::name`] round-trips through this function (asserted by a
/// golden test), so campaign manifests can name any zoo workload.
///
/// Recognized abbreviations: `rn-50`, `rnx`, `ires`, `pnas`, `tf`,
/// `tf-large`, `bert`, `gn`, `dn-121`, `mbv2`, `effnet`, `vgg` — plus
/// the test networks `two-conv` and `tiny-resnet`, and the decode
/// workloads `gpt2-decode` and `decode-tiny`. Decode names accept an
/// optional `@<pos>` suffix selecting the sequence position
/// (`decode-tiny@128`); static names reject it.
///
/// ```
/// use gemini_model::zoo;
///
/// let a = zoo::by_name("bert-base").expect("canonical");
/// let b = zoo::by_name("BERT_Base").expect("alias");
/// assert_eq!(a.graph.name(), b.graph.name());
/// assert_eq!(a.kind, zoo::WorkloadKind::Static);
/// assert!(zoo::by_name("alexnet").is_none());
///
/// let d = zoo::by_name("decode-tiny@128").expect("decode at position");
/// assert_eq!(d.graph.name(), "decode-tiny@128");
/// assert!(matches!(d.kind, zoo::WorkloadKind::Decode(s) if s.seq_pos == 128));
/// assert!(zoo::by_name("rn-50@128").is_none(), "static names reject @pos");
/// ```
pub fn by_name(name: &str) -> Option<Workload> {
    let normalized: String = name
        .trim()
        .to_ascii_lowercase()
        .chars()
        .map(|c| if matches!(c, '_' | ' ' | '.') { '-' } else { c })
        .collect();
    let (base, pos) = match normalized.split_once('@') {
        Some((b, p)) => (b, Some(p.parse::<u32>().ok().filter(|&v| v > 0)?)),
        None => (normalized.as_str(), None),
    };
    let decode = |spec: DecodeSpec, aliases: &'static [&'static str]| {
        let spec = match pos {
            Some(p) => spec.at(p),
            None => spec,
        };
        Some(Workload {
            graph: decoder::decode_step(aliases[0], &spec),
            kind: WorkloadKind::Decode(spec),
            aliases,
        })
    };
    match base {
        "gpt2-decode" | "gpt2" => return decode(gpt2_spec(), GPT2_DECODE_ALIASES),
        "decode-tiny" | "tiny-decode" => return decode(decode_tiny_spec(), DECODE_TINY_ALIASES),
        _ => {}
    }
    if pos.is_some() {
        return None; // `@pos` is only meaningful on decode workloads
    }
    let fixed = |graph: Dnn, aliases: &'static [&'static str]| {
        Some(Workload {
            graph,
            kind: WorkloadKind::Static,
            aliases,
        })
    };
    match base {
        "rn-50" | "rn50" | "resnet50" | "resnet-50" => fixed(resnet50(), RN50_ALIASES),
        "rnx" | "resnext" | "resnext50" | "resnext-50" => fixed(resnext50(), RNX_ALIASES),
        "ires" | "inception-resnet" | "inception-resnet-v1" => {
            fixed(inception_resnet_v1(), IRES_ALIASES)
        }
        "pnas" | "pnasnet" => fixed(pnasnet(), PNAS_ALIASES),
        "tf" | "transformer" | "transformer-base" => fixed(transformer_base(), TF_ALIASES),
        "tf-large" | "transformer-large" => fixed(transformer_large(), TF_LARGE_ALIASES),
        "gn" | "googlenet" => fixed(googlenet(), GN_ALIASES),
        "dn-121" | "densenet" | "densenet121" | "densenet-121" => {
            fixed(densenet121(), DN121_ALIASES)
        }
        "mbv2" | "mobilenet" | "mobilenetv2" | "mobilenet-v2" => {
            fixed(mobilenet_v2(), MBV2_ALIASES)
        }
        "vgg" | "vgg16" | "vgg-16" => fixed(vgg16(), VGG_ALIASES),
        "effnet" | "effnet-b0" | "efficientnet" | "efficientnet-b0" => {
            fixed(efficientnet_b0(), EFFNET_ALIASES)
        }
        "bert" | "bert-base" => fixed(bert_base(), BERT_ALIASES),
        "two-conv" | "twoconv" => fixed(two_conv_example(), TWO_CONV_ALIASES),
        "tiny-resnet" | "tinyresnet" => fixed(tiny_resnet(), TINY_RESNET_ALIASES),
        _ => None,
    }
}

/// A tiny two-conv network matching the running example of Fig. 3 of the
/// paper (a layer group with two convolutions).
///
/// ```
/// let d = gemini_model::zoo::two_conv_example();
/// assert_eq!(d.len(), 3); // input + two convs
/// ```
pub fn two_conv_example() -> Dnn {
    let mut n = Net::new("two-conv");
    let x = n.input(FmapShape::new(16, 16, 32));
    let c1 = n.conv("conv1", x, 64, 3, 1, 1);
    let _c2 = n.conv("conv2", c1, 32, 3, 1, 1);
    n.build()
}

/// A small residual network used by tests and the quickstart example:
/// structurally a miniature ResNet.
///
/// ```
/// let d = gemini_model::zoo::tiny_resnet();
/// assert_eq!(d.name(), "tiny-resnet");
/// assert_eq!(d.layer(d.outputs()[0]).ofmap.c, 10); // 10-way classifier
/// ```
pub fn tiny_resnet() -> Dnn {
    let mut n = Net::new("tiny-resnet");
    let x = n.input(FmapShape::new(32, 32, 3));
    let c1 = n.conv("conv1", x, 16, 3, 1, 1);
    let b1 = n.basic_block("b1", c1, 16, 1);
    let b2 = n.basic_block("b2", b1, 32, 2);
    let gap = n.global_avgpool("gap", b2);
    n.fc("fc", gap, 10);
    n.build()
}

/// Convenience wrapper around [`DnnBuilder`] with the composite ops the
/// zoo needs (conv+BN+ReLU, pooling, blocks). Shapes are tracked so the
/// helpers can compute output dims.
pub(crate) struct Net {
    b: DnnBuilder,
    shapes: Vec<FmapShape>,
}

impl Net {
    pub(crate) fn new(name: &str) -> Self {
        Self {
            b: DnnBuilder::new(name),
            shapes: Vec::new(),
        }
    }

    pub(crate) fn input(&mut self, shape: FmapShape) -> LayerId {
        let id = self.b.input(shape);
        self.shapes.push(shape);
        id
    }

    pub(crate) fn shape(&self, id: LayerId) -> FmapShape {
        self.shapes[id.idx()]
    }

    fn record(&mut self, id: LayerId, shape: FmapShape) -> LayerId {
        debug_assert_eq!(id.idx(), self.shapes.len());
        self.shapes.push(shape);
        id
    }

    /// Conv + folded BN/ReLU.
    pub(crate) fn conv(
        &mut self,
        name: &str,
        from: LayerId,
        cout: u32,
        k: u32,
        stride: u32,
        pad: u32,
    ) -> LayerId {
        self.conv_g(name, from, cout, (k, k), stride, (pad, pad), 1)
    }

    /// Conv with an asymmetric kernel (e.g. 1x7).
    pub(crate) fn conv_asym(
        &mut self,
        name: &str,
        from: LayerId,
        cout: u32,
        kernel: (u32, u32),
        pad: (u32, u32),
    ) -> LayerId {
        self.conv_g(name, from, cout, kernel, 1, pad, 1)
    }

    /// Grouped conv.
    // Mirrors the layer's full hyper-parameter tuple; a params struct
    // would just restate ConvParams.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn conv_g(
        &mut self,
        name: &str,
        from: LayerId,
        cout: u32,
        kernel: (u32, u32),
        stride: u32,
        pad: (u32, u32),
        groups: u32,
    ) -> LayerId {
        let i = self.shape(from);
        let p = ConvParams {
            kernel,
            stride: (stride, stride),
            pad,
            groups,
            cin: i.c,
        };
        let (oh, ow) = p.out_dim(i.h, i.w);
        let shape = FmapShape::new(oh, ow, cout);
        let id = self
            .b
            .add(name, LayerKind::Conv(p), shape, &[from])
            .unwrap_or_else(|e| panic!("zoo bug: {e}"));
        self.record(id, shape)
    }

    /// Depthwise conv (groups == channels).
    pub(crate) fn dwconv(
        &mut self,
        name: &str,
        from: LayerId,
        k: u32,
        stride: u32,
        pad: u32,
    ) -> LayerId {
        let c = self.shape(from).c;
        self.conv_g(name, from, c, (k, k), stride, (pad, pad), c)
    }

    pub(crate) fn pool(
        &mut self,
        name: &str,
        from: LayerId,
        kind: PoolKind,
        k: u32,
        stride: u32,
        pad: u32,
    ) -> LayerId {
        let i = self.shape(from);
        let p = PoolParams {
            kernel: (k, k),
            stride: (stride, stride),
            pad: (pad, pad),
            kind,
        };
        let oh = (i.h + 2 * pad).saturating_sub(k) / stride + 1;
        let ow = (i.w + 2 * pad).saturating_sub(k) / stride + 1;
        let shape = FmapShape::new(oh, ow, i.c);
        let id = self
            .b
            .add(name, LayerKind::Pool(p), shape, &[from])
            .unwrap_or_else(|e| panic!("zoo bug: {e}"));
        self.record(id, shape)
    }

    pub(crate) fn maxpool(&mut self, name: &str, from: LayerId, k: u32, s: u32, p: u32) -> LayerId {
        self.pool(name, from, PoolKind::Max, k, s, p)
    }

    pub(crate) fn global_avgpool(&mut self, name: &str, from: LayerId) -> LayerId {
        let i = self.shape(from);
        let p = PoolParams {
            kernel: (i.h, i.w),
            stride: (i.h, i.w),
            pad: (0, 0),
            kind: PoolKind::Avg,
        };
        let shape = FmapShape::new(1, 1, i.c);
        let id = self
            .b
            .add(name, LayerKind::Pool(p), shape, &[from])
            .unwrap_or_else(|e| panic!("zoo bug: {e}"));
        self.record(id, shape)
    }

    pub(crate) fn fc(&mut self, name: &str, from: LayerId, nout: u32) -> LayerId {
        let i = self.shape(from);
        let shape = FmapShape::new(1, 1, nout);
        let id = self
            .b
            .add(
                name,
                LayerKind::Fc {
                    cin: i.elems() as u32,
                },
                shape,
                &[from],
            )
            .unwrap_or_else(|e| panic!("zoo bug: {e}"));
        self.record(id, shape)
    }

    pub(crate) fn eltwise(&mut self, name: &str, inputs: &[LayerId]) -> LayerId {
        let shape = self.shape(inputs[0]);
        let id = self
            .b
            .add(
                name,
                LayerKind::Eltwise {
                    n_inputs: inputs.len() as u32,
                },
                shape,
                inputs,
            )
            .unwrap_or_else(|e| panic!("zoo bug: {e}"));
        self.record(id, shape)
    }

    pub(crate) fn concat(&mut self, name: &str, inputs: &[LayerId]) -> LayerId {
        let first = self.shape(inputs[0]);
        let c: u32 = inputs.iter().map(|i| self.shape(*i).c).sum();
        let shape = FmapShape::new(first.h, first.w, c);
        let id = self
            .b
            .add(name, LayerKind::Concat, shape, inputs)
            .unwrap_or_else(|e| panic!("zoo bug: {e}"));
        self.record(id, shape)
    }

    pub(crate) fn activation(&mut self, name: &str, from: LayerId, kind: ActKind) -> LayerId {
        let shape = self.shape(from);
        let id = self
            .b
            .add(name, LayerKind::Activation(kind), shape, &[from])
            .unwrap_or_else(|e| panic!("zoo bug: {e}"));
        self.record(id, shape)
    }

    pub(crate) fn matmul(
        &mut self,
        name: &str,
        a: LayerId,
        b: LayerId,
        operand: crate::layer::MatmulOperand,
        out: FmapShape,
    ) -> LayerId {
        let k_dim = self.shape(a).c;
        let id = self
            .b
            .add(name, LayerKind::Matmul { k_dim, operand }, out, &[a, b])
            .unwrap_or_else(|e| panic!("zoo bug: {e}"));
        self.record(id, out)
    }

    /// Separable conv: depthwise k x k then pointwise 1x1.
    pub(crate) fn sep_conv(
        &mut self,
        name: &str,
        from: LayerId,
        cout: u32,
        k: u32,
        stride: u32,
    ) -> LayerId {
        let dw = self.dwconv(&format!("{name}_dw"), from, k, stride, k / 2);
        self.conv(&format!("{name}_pw"), dw, cout, 1, 1, 0)
    }

    /// A two-conv residual basic block (used by the tiny test network).
    pub(crate) fn basic_block(
        &mut self,
        name: &str,
        from: LayerId,
        cout: u32,
        stride: u32,
    ) -> LayerId {
        let c1 = self.conv(&format!("{name}_c1"), from, cout, 3, stride, 1);
        let c2 = self.conv(&format!("{name}_c2"), c1, cout, 3, 1, 1);
        let short = if stride != 1 || self.shape(from).c != cout {
            self.conv(&format!("{name}_proj"), from, cout, 1, stride, 0)
        } else {
            from
        };
        self.eltwise(&format!("{name}_add"), &[c2, short])
    }

    pub(crate) fn build(self) -> Dnn {
        self.b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_macs_match_published() {
        let d = resnet50();
        let gmacs = d.total_macs(1) as f64 / 1e9;
        // Published: ~4.09 GMACs @ 224x224.
        assert!((3.6..4.5).contains(&gmacs), "ResNet-50 GMACs {gmacs}");
        let params_m = d.total_weight_bytes() as f64 / 1e6;
        // ~25.5M params; we ignore BN/bias so slightly less.
        assert!(
            (22.0..27.0).contains(&params_m),
            "ResNet-50 params {params_m}M"
        );
    }

    #[test]
    fn resnext50_macs_match_published() {
        let d = resnext50();
        let gmacs = d.total_macs(1) as f64 / 1e9;
        // Published: ~4.2 GMACs.
        assert!((3.6..5.0).contains(&gmacs), "ResNeXt-50 GMACs {gmacs}");
    }

    #[test]
    fn googlenet_macs_match_published() {
        let d = googlenet();
        let gmacs = d.total_macs(1) as f64 / 1e9;
        // Published: ~1.5 GMACs.
        assert!((1.2..1.9).contains(&gmacs), "GoogLeNet GMACs {gmacs}");
    }

    #[test]
    fn inception_resnet_builds_deep() {
        let d = inception_resnet_v1();
        assert!(d.len() > 100, "IRes should be deep, got {} layers", d.len());
        let gmacs = d.total_macs(1) as f64 / 1e9;
        assert!(gmacs > 2.0, "IRes GMACs {gmacs}");
    }

    #[test]
    fn pnasnet_has_intricate_dependencies() {
        let d = pnasnet();
        // PNASNet cells concat 5 branches: at least one layer has >= 4 preds.
        let max_preds = d.ids().map(|i| d.preds(i).len()).max().unwrap();
        assert!(
            max_preds >= 4,
            "expected concat fan-in >= 4, got {max_preds}"
        );
        assert!(d.len() > 80);
    }

    #[test]
    fn transformer_contains_activation_matmuls() {
        let d = transformer_base();
        let n_mm = d
            .layers()
            .iter()
            .filter(|l| {
                matches!(
                    l.kind,
                    LayerKind::Matmul {
                        operand: crate::layer::MatmulOperand::ActRowSlice,
                        ..
                    } | LayerKind::Matmul {
                        operand: crate::layer::MatmulOperand::ActChanSlice,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(n_mm, 12, "6 encoder layers x (QK^T + AV)");
    }

    #[test]
    fn all_paper_workloads_build() {
        for d in paper_workloads() {
            assert!(!d.is_empty());
            assert!(d.total_macs(1) > 0, "{} has zero MACs", d.name());
            assert_eq!(d.inputs().len(), 1, "{} should have one input", d.name());
        }
    }

    #[test]
    fn by_name_resolves_paper_abbreviations() {
        for n in [
            "RN-50", "RNX", "IRes", "PNas", "TF", "TF-Large", "GN", "DN-121", "MBV2", "VGG",
        ] {
            assert!(by_name(n).is_some(), "{n} not found");
        }
        assert!(by_name("alexnet").is_none());
    }

    #[test]
    fn by_name_resolves_decode_workloads_and_positions() {
        let d = by_name("decode-tiny").expect("decode base name");
        assert_eq!(d.graph.name(), "decode-tiny@64", "default position");
        assert_eq!(d.aliases[0], "decode-tiny");
        let WorkloadKind::Decode(spec) = d.kind else {
            panic!("decode-tiny must be tagged Decode, got {:?}", d.kind);
        };
        assert_eq!(spec, decode_tiny_spec());
        // `@pos` picks the position; the graph name round-trips.
        let at = by_name("decode-tiny@128").expect("explicit position");
        assert!(matches!(at.kind, WorkloadKind::Decode(s) if s.seq_pos == 128));
        assert_eq!(at.graph.name(), "decode-tiny@128");
        let back = by_name(at.graph.name()).expect("round-trip");
        assert_eq!(back.graph.name(), at.graph.name());
        assert_eq!(back.graph.total_macs(1), at.graph.total_macs(1));
        // Aliases and normalization apply to decode names too.
        assert_eq!(
            by_name("Tiny_Decode@128").expect("alias").graph.name(),
            "decode-tiny@128"
        );
        assert!(by_name("gpt2").is_some());
        // Degenerate or misplaced positions are rejected.
        assert!(by_name("decode-tiny@0").is_none());
        assert!(by_name("decode-tiny@x").is_none());
        assert!(by_name("rn-50@64").is_none(), "static names reject @pos");
    }

    #[test]
    fn static_workloads_are_tagged_static() {
        for n in ["rn-50", "tf", "bert", "tiny-resnet"] {
            let w = by_name(n).expect("zoo workload");
            assert_eq!(w.kind, WorkloadKind::Static, "{n}");
            assert!(
                w.aliases.contains(&n),
                "{n} missing from its own alias list {:?}",
                w.aliases
            );
        }
    }

    #[test]
    fn by_name_is_case_and_separator_insensitive() {
        for (a, b) in [
            ("bert-base", "BERT_Base"),
            ("tf-large", "TF_LARGE"),
            ("rn-50", "rn_50"),
            ("tiny-resnet", "Tiny_ResNet"),
            ("two-conv", " two.conv "),
        ] {
            let ca = by_name(a).unwrap_or_else(|| panic!("{a} not found"));
            let cb = by_name(b).unwrap_or_else(|| panic!("{b} not found"));
            assert_eq!(ca.graph.name(), cb.graph.name(), "{a} vs {b}");
            assert_eq!(ca.graph.len(), cb.graph.len());
        }
    }

    #[test]
    fn golden_paper_workloads_round_trip_by_name() {
        // Golden layer/MAC counts: every paper workload must resolve
        // through `by_name` via its own `Dnn::name()` to a bit-stable
        // graph. A change here means the zoo's networks drifted — the
        // paper-claims tests and every campaign fingerprint depend on
        // these staying put.
        let golden: &[(&str, usize, u64)] = &[
            ("rn-50", 73, 4_089_184_256),
            ("rnx", 73, 4_230_479_872),
            ("ires", 175, 6_206_361_696),
            ("pnas", 220, 2_530_324_288),
            ("tf", 79, 2_516_582_400),
        ];
        let workloads = paper_workloads();
        assert_eq!(workloads.len(), golden.len());
        for (dnn, &(name, layers, macs)) in workloads.iter().zip(golden) {
            assert_eq!(dnn.name(), name);
            let back = by_name(dnn.name())
                .unwrap_or_else(|| panic!("{} does not round-trip by_name", dnn.name()));
            assert_eq!(back.graph.name(), dnn.name());
            assert_eq!(back.graph.len(), dnn.len(), "{name} layer count unstable");
            assert_eq!(back.graph.total_macs(1), dnn.total_macs(1));
            assert_eq!(dnn.len(), layers, "{name} golden layer count");
            assert_eq!(dnn.total_macs(1), macs, "{name} golden MAC count");
        }
    }

    #[test]
    fn every_zoo_graph_is_topologically_ordered() {
        for d in [
            resnet50(),
            resnext50(),
            inception_resnet_v1(),
            pnasnet(),
            transformer_base(),
            googlenet(),
        ] {
            for id in d.ids() {
                for p in d.preds(id) {
                    assert!(p < &id, "{}: pred {p} not before {id}", d.name());
                }
            }
        }
    }

    #[test]
    fn tiny_resnet_shape() {
        let d = tiny_resnet();
        let out = d.outputs();
        assert_eq!(out.len(), 1);
        assert_eq!(d.layer(out[0]).ofmap.c, 10);
    }
}
