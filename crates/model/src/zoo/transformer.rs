//! Transformer encoder builders.
//!
//! The paper uses the Transformer (Vaswani et al.) as its default DSE
//! workload. An encoder layer is expressed with 1x1 convolutions for the
//! token-wise projections (the sequence is laid out along the fmap height
//! dimension) and activation-operand matmuls for Q.K^T and A.V — the
//! latter create the core-to-core flows whose congestion Fig. 9 studies.
//!
//! Heads are folded into a single attention map (documented substitution:
//! per-head maps would multiply attention-map volume by the head count
//! but do not change the mapping structure).

use crate::graph::Dnn;
use crate::layer::{ActKind, MatmulOperand};
use crate::region::FmapShape;

use super::Net;

/// Builds an encoder-only Transformer.
///
/// `seq` tokens of width `d_model`, `n_layers` encoder layers with an
/// FFN of width `d_ff`.
pub fn transformer_with(name: &str, seq: u32, d_model: u32, d_ff: u32, n_layers: u32) -> Dnn {
    let mut n = Net::new(name);
    let mut cur = n.input(FmapShape::new(seq, 1, d_model));

    for li in 0..n_layers {
        let p = |s: &str| format!("l{li}_{s}");
        let q = n.conv(&p("q"), cur, d_model, 1, 1, 0);
        let k = n.conv(&p("k"), cur, d_model, 1, 1, 0);
        let v = n.conv(&p("v"), cur, d_model, 1, 1, 0);
        // Scores = Q.K^T : (seq x seq), reduction over d_model.
        let scores = n.matmul(
            &p("qkt"),
            q,
            k,
            MatmulOperand::ActRowSlice,
            FmapShape::new(seq, 1, seq),
        );
        let probs = n.activation(&p("softmax"), scores, ActKind::Softmax);
        // Context = A.V : (seq x d_model), reduction over seq.
        let ctx = n.matmul(
            &p("av"),
            probs,
            v,
            MatmulOperand::ActChanSlice,
            FmapShape::new(seq, 1, d_model),
        );
        let proj = n.conv(&p("proj"), ctx, d_model, 1, 1, 0);
        let add1 = n.eltwise(&p("add1"), &[proj, cur]);
        let ln1 = n.activation(&p("ln1"), add1, ActKind::LayerNorm);
        let ff1 = n.conv(&p("ff1"), ln1, d_ff, 1, 1, 0);
        let ff2 = n.conv(&p("ff2"), ff1, d_model, 1, 1, 0);
        let add2 = n.eltwise(&p("add2"), &[ff2, ln1]);
        cur = n.activation(&p("ln2"), add2, ActKind::LayerNorm);
    }
    n.build()
}

/// Transformer base: 6 layers, d_model 512, d_ff 2048, 128-token
/// sequences (the paper's default DSE workload, "TF").
///
/// ```
/// let d = gemini_model::zoo::transformer_base();
/// assert_eq!(d.name(), "tf");
/// // 6 encoder layers x (Q.K^T + A.V) activation matmuls.
/// use gemini_model::LayerKind;
/// let n_mm = d.layers().iter()
///     .filter(|l| matches!(l.kind, LayerKind::Matmul { .. }))
///     .count();
/// assert_eq!(n_mm, 12);
/// ```
pub fn transformer_base() -> Dnn {
    transformer_with("tf", 128, 512, 2048, 6)
}

/// Transformer large: 6 layers, d_model 1024, d_ff 4096 ("TF-Large" of
/// Fig. 8).
pub fn transformer_large() -> Dnn {
    transformer_with("tf-large", 128, 1024, 4096, 6)
}

/// BERT-base encoder: 12 layers, d_model 768, d_ff 3072, 128-token
/// sequences — the language-model workload class the paper's intro
/// motivates (BERT is its citation \[10\]).
pub fn bert_base() -> Dnn {
    transformer_with("bert-base", 128, 768, 3072, 12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn encoder_layer_census() {
        let d = transformer_base();
        // Input + 6 layers x 13 ops.
        assert_eq!(d.len(), 1 + 6 * 13);
    }

    #[test]
    fn attention_shapes() {
        let d = transformer_base();
        let scores = d.layers().iter().find(|l| l.name == "l0_qkt").unwrap();
        assert_eq!((scores.ofmap.h, scores.ofmap.c), (128, 128));
        let ctx = d.layers().iter().find(|l| l.name == "l0_av").unwrap();
        assert_eq!((ctx.ofmap.h, ctx.ofmap.c), (128, 512));
    }

    #[test]
    fn ffn_dominates_weights() {
        let d = transformer_base();
        let ffn_w: u64 = d
            .layers()
            .iter()
            .filter(|l| l.name.contains("ff"))
            .map(|l| l.weight_bytes())
            .sum();
        assert!(
            ffn_w * 2 > d.total_weight_bytes(),
            "FFN should hold >half the weights"
        );
    }

    #[test]
    fn large_is_larger() {
        let b = transformer_base();
        let l = transformer_large();
        assert!(l.total_macs(1) > 3 * b.total_macs(1));
    }

    #[test]
    fn matmul_reductions_correct() {
        let d = transformer_base();
        for l in d.layers() {
            if let LayerKind::Matmul { k_dim, operand } = &l.kind {
                match operand {
                    MatmulOperand::ActRowSlice => assert_eq!(*k_dim, 512),
                    MatmulOperand::ActChanSlice => assert_eq!(*k_dim, 128),
                    MatmulOperand::Weight => {}
                }
            }
        }
    }
}
