//! GPT-style decode-step workloads.
//!
//! One graph models **one autoregressive decode step** at a given
//! sequence position: the new token's Q/K/V projections, attention
//! against the accumulated KV cache, and the MLP stack. The KV cache is
//! explicit — per block, two [`crate::layer::LayerKind::Input`]
//! pseudo-layers of shape `(seq_pos, 1, d_model)` that reside in DRAM
//! and are read by the attention matmuls — so the workload's DRAM read
//! traffic grows linearly with `seq_pos` while its compute stays nearly
//! flat. That position-dependence is what distinguishes serving a
//! decoder from the paper's static encoder transformer, and is tagged
//! on the zoo entry as [`super::WorkloadKind::Decode`].
//!
//! Two substitutions mirror `zoo::transformer`: attention heads are
//! folded into a single attention map per block (the per-head split is
//! a parallelization detail below this IR's granularity), and the new
//! token's K/V rows are modeled as cache-append outputs (dead-end
//! projections): their MACs and weight traffic are priced, while the
//! appended row's DRAM write — `d_model` bytes against the cache's
//! `seq_pos * d_model`-byte read — is negligible and not modeled.
//!
//! The byte model of the mapped graph is int8 (the repo-wide element
//! width); `kv_dtype` scales the *accounted* cache footprint
//! ([`DecodeSpec::kv_bytes`]) for wider cache types, which the mapped
//! DRAM traffic does not track (see docs/CONCORDANCE.md).

use crate::graph::Dnn;
use crate::layer::{ActKind, MatmulOperand};
use crate::region::FmapShape;

use super::Net;

/// Element type of the KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvDtype {
    /// 8-bit cache entries (the repo's native element width).
    Int8,
    /// 16-bit cache entries (doubles [`DecodeSpec::kv_bytes`]).
    Fp16,
}

impl KvDtype {
    /// Bytes per cache element.
    pub fn bytes(self) -> u64 {
        match self {
            Self::Int8 => 1,
            Self::Fp16 => 2,
        }
    }
}

/// Parameters of one decode step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodeSpec {
    /// Model width.
    pub d_model: u32,
    /// Attention heads (folded into one attention map per block; must
    /// divide `d_model`).
    pub heads: u32,
    /// Decoder blocks.
    pub layers: u32,
    /// Sequence position of the step: the KV cache holds this many
    /// rows per block.
    pub seq_pos: u32,
    /// KV-cache element type.
    pub kv_dtype: KvDtype,
}

impl DecodeSpec {
    /// The same spec at another sequence position.
    #[must_use]
    pub fn at(mut self, seq_pos: u32) -> Self {
        self.seq_pos = seq_pos;
        self
    }

    /// MLP hidden width (the conventional `4 * d_model`).
    pub fn d_ff(&self) -> u32 {
        4 * self.d_model
    }

    /// Total KV-cache footprint at this position: K and V rows for
    /// every block, `seq_pos x d_model` each, at the cache element
    /// width. This is the per-step DRAM read volume the cache adds.
    pub fn kv_bytes(&self) -> u64 {
        2 * self.layers as u64 * self.seq_pos as u64 * self.d_model as u64 * self.kv_dtype.bytes()
    }
}

/// The GPT-2 (124M) decode step: 12 blocks, width 768, 12 heads.
/// Default position 512 — mid-context for its 1024-token window.
pub fn gpt2_spec() -> DecodeSpec {
    DecodeSpec {
        d_model: 768,
        heads: 12,
        layers: 12,
        seq_pos: 512,
        kv_dtype: KvDtype::Int8,
    }
}

/// A two-block miniature for tests and CI campaigns.
pub fn decode_tiny_spec() -> DecodeSpec {
    DecodeSpec {
        d_model: 128,
        heads: 4,
        layers: 2,
        seq_pos: 64,
        kv_dtype: KvDtype::Int8,
    }
}

/// Builds the decode-step graph for `spec`, named `{base}@{seq_pos}`
/// (the canonical spelling [`super::by_name`] resolves).
///
/// # Panics
///
/// Panics when the spec is degenerate (zero dims, position 0, or heads
/// not dividing `d_model`).
pub fn decode_step(base: &str, spec: &DecodeSpec) -> Dnn {
    assert!(
        spec.d_model > 0 && spec.layers > 0 && spec.seq_pos > 0,
        "degenerate decode spec {spec:?}"
    );
    assert!(
        spec.heads > 0 && spec.d_model % spec.heads == 0,
        "heads must divide d_model, got {}/{}",
        spec.d_model,
        spec.heads
    );
    let mut n = Net::new(&format!("{base}@{}", spec.seq_pos));
    // The step processes one token; batching across concurrent
    // sequences is the evaluator's batch dimension.
    let tok = n.input(FmapShape::new(1, 1, spec.d_model));
    let mut cur = tok;
    for li in 0..spec.layers {
        let p = |s: &str| format!("l{li}_{s}");
        let q = n.conv(&p("q"), cur, spec.d_model, 1, 1, 0);
        // Cache appends: computed each step, consumed by *future* steps
        // (graph outputs here).
        let _k_new = n.conv(&p("k"), cur, spec.d_model, 1, 1, 0);
        let _v_new = n.conv(&p("v"), cur, spec.d_model, 1, 1, 0);
        // The accumulated cache, resident in DRAM.
        let k_cache = n.input(FmapShape::new(spec.seq_pos, 1, spec.d_model));
        let v_cache = n.input(FmapShape::new(spec.seq_pos, 1, spec.d_model));
        // q · K^T over the cache rows: one attention row per step.
        let scores = n.matmul(
            &p("qkt"),
            q,
            k_cache,
            MatmulOperand::ActRowSlice,
            FmapShape::new(1, 1, spec.seq_pos),
        );
        let probs = n.activation(&p("softmax"), scores, ActKind::Softmax);
        // attention · V back to model width.
        let ctx = n.matmul(
            &p("av"),
            probs,
            v_cache,
            MatmulOperand::ActChanSlice,
            FmapShape::new(1, 1, spec.d_model),
        );
        let proj = n.conv(&p("proj"), ctx, spec.d_model, 1, 1, 0);
        let add1 = n.eltwise(&p("add1"), &[proj, cur]);
        let ln1 = n.activation(&p("ln1"), add1, ActKind::LayerNorm);
        let ff1 = n.conv(&p("ff1"), ln1, spec.d_ff(), 1, 1, 0);
        let gelu = n.activation(&p("gelu"), ff1, ActKind::Gelu);
        let ff2 = n.conv(&p("ff2"), gelu, spec.d_model, 1, 1, 0);
        let add2 = n.eltwise(&p("add2"), &[ff2, ln1]);
        cur = n.activation(&p("ln2"), add2, ActKind::LayerNorm);
    }
    n.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_step_census() {
        // Per block: q, k, v, k-cache, v-cache, qkt, softmax, av, proj,
        // add1, ln1, ff1, gelu, ff2, add2, ln2 = 16 layers, plus the
        // token input.
        let d = decode_step("decode-tiny", &decode_tiny_spec());
        assert_eq!(d.name(), "decode-tiny@64");
        assert_eq!(d.layers().len(), 1 + 16 * 2);
        // One token input + two cache inputs per block.
        assert_eq!(d.inputs().len(), 1 + 2 * 2);
    }

    #[test]
    fn compute_grows_linearly_with_position() {
        let spec = decode_tiny_spec();
        let m64 = decode_step("decode-tiny", &spec.at(64)).total_macs(1);
        let m128 = decode_step("decode-tiny", &spec.at(128)).total_macs(1);
        // Only the attention matmuls scale with position: 2 matmuls x
        // d_model MACs per extra cache row per block.
        let expect = 2 * 2 * 64 * 128;
        assert_eq!(m128 - m64, expect as u64);
    }

    #[test]
    fn kv_bytes_track_position_and_dtype() {
        let spec = decode_tiny_spec();
        assert_eq!(spec.kv_bytes(), 2 * 2 * 64 * 128);
        assert_eq!(spec.at(256).kv_bytes(), 2 * 2 * 256 * 128);
        let wide = DecodeSpec {
            kv_dtype: KvDtype::Fp16,
            ..spec
        };
        assert_eq!(wide.kv_bytes(), 2 * spec.kv_bytes());
    }

    #[test]
    #[should_panic(expected = "heads must divide")]
    fn bad_heads_rejected() {
        let spec = DecodeSpec {
            heads: 5,
            ..decode_tiny_spec()
        };
        let _ = decode_step("x", &spec);
    }
}
