//! PNASNet builder.
//!
//! PNASNet's searched cells mix separable convolutions of several kernel
//! sizes, pooling and identity branches, pairwise-summed and finally
//! concatenated — the most irregular dependency structure in the paper's
//! workload set. We reproduce the PNASNet-5 cell structure (5 blocks of
//! two combined branches, concatenated) with the mobile-scale filter
//! schedule; exact NAS-found channel multipliers are not public in the
//! paper, so round numbers of the same magnitude are used. The mapper
//! only consumes shapes and edges, so this preserves the workload's
//! mapping-relevant character (documented in DESIGN.md).

use crate::graph::{Dnn, LayerId};
use crate::layer::PoolKind;
use crate::region::FmapShape;

use super::Net;

/// One PNASNet-5 cell: five blocks, each the element-wise sum of two
/// branches; block outputs are concatenated. `stride` of 2 makes it a
/// reduction cell.
fn cell(n: &mut Net, name: &str, from: LayerId, f: u32, stride: u32) -> LayerId {
    // Branch helpers. Every branch normalizes to `f` channels so blocks
    // can be summed.
    let sep = |n: &mut Net, tag: &str, k: u32| -> LayerId {
        n.sep_conv(&format!("{name}_{tag}_sep{k}"), from, f, k, stride)
    };
    let pooled = |n: &mut Net, tag: &str| -> LayerId {
        let p = n.pool(
            &format!("{name}_{tag}_pool"),
            from,
            PoolKind::Max,
            3,
            stride,
            1,
        );
        n.conv(&format!("{name}_{tag}_adj"), p, f, 1, 1, 0)
    };
    let ident = |n: &mut Net, tag: &str| -> LayerId {
        // Identity branch; a 1x1 adjusts channels/stride when needed.
        n.conv(&format!("{name}_{tag}_id"), from, f, 1, stride, 0)
    };

    let b1l = sep(n, "b1l", 5);
    let b1r = pooled(n, "b1r");
    let b1 = n.eltwise(&format!("{name}_b1"), &[b1l, b1r]);

    let b2l = sep(n, "b2l", 7);
    let b2r = pooled(n, "b2r");
    let b2 = n.eltwise(&format!("{name}_b2"), &[b2l, b2r]);

    let b3l = sep(n, "b3l", 5);
    let b3r = sep(n, "b3r", 3);
    let b3 = n.eltwise(&format!("{name}_b3"), &[b3l, b3r]);

    let b4l = sep(n, "b4l", 3);
    let b4r = ident(n, "b4r");
    let b4 = n.eltwise(&format!("{name}_b4"), &[b4l, b4r]);

    let b5l = sep(n, "b5l", 3);
    let b5r = ident(n, "b5r");
    let b5 = n.eltwise(&format!("{name}_b5"), &[b5l, b5r]);

    n.concat(&format!("{name}_cat"), &[b1, b2, b3, b4, b5])
}

/// PNASNet at 224x224: stem + 3 stages of 3 cells (first of each stage is
/// a stride-2 reduction cell), ~2 GMACs.
///
/// ```
/// let d = gemini_model::zoo::pnasnet();
/// assert_eq!(d.name(), "pnas");
/// // Cells concat five branches: wide fan-in is the point.
/// let max_preds = d.ids().map(|i| d.preds(i).len()).max().unwrap();
/// assert!(max_preds >= 4);
/// ```
pub fn pnasnet() -> Dnn {
    let mut n = Net::new("pnas");
    let x = n.input(FmapShape::new(224, 224, 3));
    let stem = n.conv("stem", x, 32, 3, 2, 1); // 112

    let mut cur = stem;
    let stage_filters = [44u32, 88, 176];
    for (si, &f) in stage_filters.iter().enumerate() {
        for ci in 0..3 {
            let stride = if ci == 0 { 2 } else { 1 };
            cur = cell(&mut n, &format!("s{si}c{ci}"), cur, f, stride);
        }
    }
    let gap = n.global_avgpool("gap", cur);
    n.fc("fc", gap, 1000);
    n.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn pnasnet_structure() {
        let d = pnasnet();
        // 9 cells x 5 blocks of eltwise sums.
        let adds = d
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Eltwise { .. }))
            .count();
        assert_eq!(adds, 45);
        let cats = d
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Concat))
            .count();
        assert_eq!(cats, 9);
    }

    #[test]
    fn pnasnet_spatial_reduction() {
        let d = pnasnet();
        let last_cat = d
            .layers()
            .iter()
            .rev()
            .find(|l| matches!(l.kind, LayerKind::Concat))
            .unwrap();
        // 224 / 2 (stem) / 2 / 2 / 2 = 14.
        assert_eq!(last_cat.ofmap.h, 14);
        assert_eq!(last_cat.ofmap.c, 176 * 5);
    }

    #[test]
    fn pnasnet_has_depthwise() {
        let d = pnasnet();
        let dw = d
            .layers()
            .iter()
            .any(|l| matches!(l.kind, LayerKind::Conv(p) if p.groups > 1 && p.groups == p.cin));
        assert!(dw);
    }
}
