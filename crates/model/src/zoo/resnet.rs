//! ResNet-50 and ResNeXt-50 (32x4d) builders.
//!
//! Both use the standard 224x224x3 ImageNet input and the classic
//! bottleneck residual structure the paper singles out as "prevalent in
//! many DNNs" (Sec. VI-A3).

use crate::graph::{Dnn, LayerId};
use crate::region::FmapShape;

use super::Net;

/// Bottleneck residual block: 1x1 reduce, 3x3 (optionally grouped), 1x1
/// expand, plus a projection shortcut when shape changes.
fn bottleneck(
    n: &mut Net,
    name: &str,
    from: LayerId,
    mid: u32,
    out: u32,
    stride: u32,
    groups: u32,
) -> LayerId {
    let c1 = n.conv(&format!("{name}_1x1a"), from, mid, 1, 1, 0);
    let c2 = n.conv_g(
        &format!("{name}_3x3"),
        c1,
        mid,
        (3, 3),
        stride,
        (1, 1),
        groups,
    );
    let c3 = n.conv(&format!("{name}_1x1b"), c2, out, 1, 1, 0);
    let short = if stride != 1 || n.shape(from).c != out {
        n.conv(&format!("{name}_proj"), from, out, 1, stride, 0)
    } else {
        from
    };
    n.eltwise(&format!("{name}_add"), &[c3, short])
}

fn resnet_like(name: &str, mid_base: u32, groups: u32) -> Dnn {
    let mut n = Net::new(name);
    let x = n.input(FmapShape::new(224, 224, 3));
    let c1 = n.conv("conv1", x, 64, 7, 2, 3);
    let mut cur = n.maxpool("pool1", c1, 3, 2, 1);

    // (blocks, mid, out, first-stride) per stage.
    let stages = [
        (3u32, mid_base, 256u32, 1u32),
        (4, mid_base * 2, 512, 2),
        (6, mid_base * 4, 1024, 2),
        (3, mid_base * 8, 2048, 2),
    ];
    for (si, &(blocks, mid, out, stride0)) in stages.iter().enumerate() {
        for bi in 0..blocks {
            let stride = if bi == 0 { stride0 } else { 1 };
            cur = bottleneck(
                &mut n,
                &format!("s{}b{}", si + 2, bi),
                cur,
                mid,
                out,
                stride,
                groups,
            );
        }
    }
    let gap = n.global_avgpool("gap", cur);
    n.fc("fc", gap, 1000);
    n.build()
}

/// ResNet-50 at 224x224 (~4.1 GMACs, ~25M params).
///
/// ```
/// let d = gemini_model::zoo::resnet50();
/// assert_eq!(d.name(), "rn-50");
/// assert_eq!(d.len(), 73);
/// assert!((d.total_macs(1) as f64 / 1e9 - 4.1).abs() < 0.2);
/// ```
pub fn resnet50() -> Dnn {
    resnet_like("rn-50", 64, 1)
}

/// ResNeXt-50 32x4d at 224x224: doubled bottleneck width with 32 groups
/// (~4.2 GMACs).
///
/// ```
/// let d = gemini_model::zoo::resnext50();
/// assert_eq!(d.name(), "rnx");
/// // Same macro-structure as ResNet-50, different bottlenecks.
/// assert_eq!(d.len(), gemini_model::zoo::resnet50().len());
/// ```
pub fn resnext50() -> Dnn {
    resnet_like("rnx", 128, 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn resnet50_layer_census() {
        let d = resnet50();
        let convs = d
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv(_)))
            .count();
        // 1 stem + 16 blocks x 3 + 4 projections = 53 convs.
        assert_eq!(convs, 53);
        let adds = d
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Eltwise { .. }))
            .count();
        assert_eq!(adds, 16);
    }

    #[test]
    fn resnet50_final_fmap_is_7x7() {
        let d = resnet50();
        let last_add = d
            .ids()
            .filter(|&i| matches!(d.layer(i).kind, LayerKind::Eltwise { .. }))
            .last()
            .unwrap();
        let s = d.layer(last_add).ofmap;
        assert_eq!((s.h, s.w, s.c), (7, 7, 2048));
    }

    #[test]
    fn resnext_has_grouped_convs() {
        let d = resnext50();
        let grouped = d
            .layers()
            .iter()
            .any(|l| matches!(l.kind, LayerKind::Conv(p) if p.groups == 32));
        assert!(grouped);
    }
}
