//! Additional classic CNNs stressing specific mapper paths.
//!
//! * [`densenet121`] — concat-dominated dependency structure (every
//!   layer consumes the concatenation of all previous outputs in its
//!   block): stresses channel-offset flow inference and wide fan-in.
//! * [`mobilenet_v2`] — depthwise-separable inverted residuals: stresses
//!   grouped-conv channel slicing and low-arithmetic-intensity layers.
//! * [`vgg16`] — enormous fully-connected tail (~119M weight bytes):
//!   stresses weight streaming and the working-set spill path.

use crate::graph::{Dnn, LayerId};
use crate::layer::PoolKind;
use crate::region::FmapShape;

use super::Net;

/// One DenseNet layer: BN-ReLU folded, bottleneck 1x1 to `4*growth`,
/// then 3x3 to `growth` channels; output is concatenated onto the
/// running feature map.
fn dense_layer(n: &mut Net, name: &str, from: LayerId, growth: u32) -> LayerId {
    let b = n.conv(&format!("{name}_1x1"), from, 4 * growth, 1, 1, 0);
    n.conv(&format!("{name}_3x3"), b, growth, 3, 1, 1)
}

/// DenseNet-121 at 224x224 (~2.9 GMACs, growth 32, blocks 6/12/24/16).
pub fn densenet121() -> Dnn {
    let growth = 32;
    let mut n = Net::new("dn-121");
    let x = n.input(FmapShape::new(224, 224, 3));
    let c1 = n.conv("stem", x, 64, 7, 2, 3);
    let mut cur = n.maxpool("pool0", c1, 3, 2, 1);

    for (bi, &layers) in [6u32, 12, 24, 16].iter().enumerate() {
        for li in 0..layers {
            let new = dense_layer(&mut n, &format!("b{bi}l{li}"), cur, growth);
            cur = n.concat(&format!("b{bi}l{li}_cat"), &[cur, new]);
        }
        if bi < 3 {
            // Transition: halve channels, halve spatial.
            let c = n.shape(cur).c / 2;
            let t = n.conv(&format!("t{bi}_1x1"), cur, c, 1, 1, 0);
            cur = n.pool(&format!("t{bi}_pool"), t, PoolKind::Avg, 2, 2, 0);
        }
    }
    let gap = n.global_avgpool("gap", cur);
    n.fc("fc", gap, 1000);
    n.build()
}

/// One MobileNetV2 inverted residual: 1x1 expand (t=6), 3x3 depthwise,
/// 1x1 linear project, with a residual add when shapes allow.
fn inverted_residual(
    n: &mut Net,
    name: &str,
    from: LayerId,
    cout: u32,
    stride: u32,
    expand: u32,
) -> LayerId {
    let cin = n.shape(from).c;
    let mid = cin * expand;
    let a = if expand > 1 {
        n.conv(&format!("{name}_exp"), from, mid, 1, 1, 0)
    } else {
        from
    };
    let d = n.dwconv(&format!("{name}_dw"), a, 3, stride, 1);
    let p = n.conv(&format!("{name}_proj"), d, cout, 1, 1, 0);
    if stride == 1 && cin == cout {
        n.eltwise(&format!("{name}_add"), &[p, from])
    } else {
        p
    }
}

/// MobileNetV2 at 224x224 (~0.3 GMACs).
pub fn mobilenet_v2() -> Dnn {
    let mut n = Net::new("mbv2");
    let x = n.input(FmapShape::new(224, 224, 3));
    let c1 = n.conv("stem", x, 32, 3, 2, 1);
    let mut cur = inverted_residual(&mut n, "ir0", c1, 16, 1, 1);
    // (t, c, n, s) per the paper's table.
    let cfg = [
        (6u32, 24u32, 2u32, 2u32),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut idx = 1;
    for &(t, c, reps, s) in &cfg {
        for r in 0..reps {
            let stride = if r == 0 { s } else { 1 };
            cur = inverted_residual(&mut n, &format!("ir{idx}"), cur, c, stride, t);
            idx += 1;
        }
    }
    let head = n.conv("head", cur, 1280, 1, 1, 0);
    let gap = n.global_avgpool("gap", head);
    n.fc("fc", gap, 1000);
    n.build()
}

/// One EfficientNet MBConv: 1x1 expand, kxk depthwise (3 or 5), 1x1
/// linear project, residual when shapes allow.
///
/// Substitution note: the squeeze-and-excite block is omitted. Its two
/// tiny FCs contribute <1% of the MACs and its broadcast multiply is a
/// per-channel vector post-op our eltwise (equal-shape) IR does not
/// express; dropping it preserves the network's mapping structure
/// (depthwise bottlenecks, wide 1x1 projections) which is what the
/// mapper exercises.
fn mbconv(
    n: &mut Net,
    name: &str,
    from: LayerId,
    cout: u32,
    kernel: u32,
    stride: u32,
    expand: u32,
) -> LayerId {
    let cin = n.shape(from).c;
    let mid = cin * expand;
    let a = if expand > 1 {
        n.conv(&format!("{name}_exp"), from, mid, 1, 1, 0)
    } else {
        from
    };
    let d = n.dwconv(&format!("{name}_dw"), a, kernel, stride, kernel / 2);
    let p = n.conv(&format!("{name}_proj"), d, cout, 1, 1, 0);
    if stride == 1 && cin == cout {
        n.eltwise(&format!("{name}_add"), &[p, from])
    } else {
        p
    }
}

/// EfficientNet-B0 at 224x224 (~0.4 GMACs): mixed 3x3/5x5 depthwise
/// bottlenecks — stresses large-halo depthwise slicing on top of the
/// MobileNet-style inverted residuals.
pub fn efficientnet_b0() -> Dnn {
    let mut n = Net::new("effnet-b0");
    let x = n.input(FmapShape::new(224, 224, 3));
    let c1 = n.conv("stem", x, 32, 3, 2, 1);
    // (expand, cout, repeats, stride, kernel) per the B0 table.
    let cfg: [(u32, u32, u32, u32, u32); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let mut cur = c1;
    let mut idx = 0;
    for &(t, c, reps, s, k) in &cfg {
        for r in 0..reps {
            let stride = if r == 0 { s } else { 1 };
            cur = mbconv(&mut n, &format!("mb{idx}"), cur, c, k, stride, t);
            idx += 1;
        }
    }
    let head = n.conv("head", cur, 1280, 1, 1, 0);
    let gap = n.global_avgpool("gap", head);
    n.fc("fc", gap, 1000);
    n.build()
}

/// VGG-16 at 224x224 (~15.5 GMACs, ~134M weight bytes): the classic
/// weight-streaming stress test.
pub fn vgg16() -> Dnn {
    let mut n = Net::new("vgg16");
    let x = n.input(FmapShape::new(224, 224, 3));
    let mut cur = x;
    let stages: [(u32, u32); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    for (si, &(convs, c)) in stages.iter().enumerate() {
        for ci in 0..convs {
            cur = n.conv(&format!("s{si}c{ci}"), cur, c, 3, 1, 1);
        }
        cur = n.maxpool(&format!("s{si}_pool"), cur, 2, 2, 0);
    }
    let f1 = n.fc("fc1", cur, 4096);
    let f2 = n.fc("fc2", f1, 4096);
    n.fc("fc3", f2, 1000);
    n.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn densenet_channel_growth() {
        let d = densenet121();
        // Block 0 ends at 64 + 6*32 = 256 channels before transition.
        let t0 = d.layers().iter().find(|l| l.name == "t0_1x1").unwrap();
        assert_eq!(t0.ofmap.c, 128, "transition halves 256 -> 128");
        // Final features: 1024 channels at 7x7.
        let gap_in = d.layers().iter().find(|l| l.name == "b3l15_cat").unwrap();
        assert_eq!((gap_in.ofmap.h, gap_in.ofmap.c), (7, 1024));
        let gmacs = d.total_macs(1) as f64 / 1e9;
        assert!((2.2..3.5).contains(&gmacs), "DenseNet-121 GMACs {gmacs}");
    }

    #[test]
    fn densenet_is_concat_dominated() {
        let d = densenet121();
        let cats = d
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Concat))
            .count();
        assert_eq!(cats, 6 + 12 + 24 + 16);
    }

    #[test]
    fn mobilenet_structure() {
        let d = mobilenet_v2();
        let gmacs = d.total_macs(1) as f64 / 1e9;
        assert!((0.2..0.5).contains(&gmacs), "MobileNetV2 GMACs {gmacs}");
        let dw = d
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv(p) if p.groups > 1))
            .count();
        assert_eq!(dw, 17, "17 depthwise convs");
        let adds = d
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Eltwise { .. }))
            .count();
        assert_eq!(adds, 10, "10 residual adds");
    }

    #[test]
    fn efficientnet_structure() {
        let d = efficientnet_b0();
        let gmacs = d.total_macs(1) as f64 / 1e9;
        assert!(
            (0.25..0.55).contains(&gmacs),
            "EfficientNet-B0 GMACs {gmacs}"
        );
        // 16 MBConv blocks, each with one depthwise conv.
        let dw: Vec<_> = d
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv(p) if p.groups > 1))
            .collect();
        assert_eq!(dw.len(), 16, "16 depthwise convs");
        // Both 3x3 and 5x5 depthwise kernels appear.
        let has5 = dw
            .iter()
            .any(|l| matches!(l.kind, LayerKind::Conv(p) if p.kernel == (5, 5)));
        assert!(has5, "5x5 depthwise stages missing");
        // Final feature width is 1280 at 7x7.
        let head = d.layers().iter().find(|l| l.name == "head").unwrap();
        assert_eq!((head.ofmap.h, head.ofmap.c), (7, 1280));
    }

    #[test]
    fn vgg_weight_heavy() {
        let d = vgg16();
        let gmacs = d.total_macs(1) as f64 / 1e9;
        assert!((14.0..17.0).contains(&gmacs), "VGG-16 GMACs {gmacs}");
        let params_m = d.total_weight_bytes() as f64 / 1e6;
        assert!(
            (130.0..140.0).contains(&params_m),
            "VGG-16 params {params_m}M"
        );
        // FC1 dominates: 25088 x 4096.
        let fc1 = d.layers().iter().find(|l| l.name == "fc1").unwrap();
        assert_eq!(fc1.weight_bytes(), 25088 * 4096);
    }
}
