//! GoogLeNet (Inception v1) and Inception-ResNet-v1 builders.
//!
//! Inception-ResNet-v1 represents the "DNNs with more intricate
//! dependencies" category of the paper's workload set; GoogLeNet ("GN")
//! appears in the chiplet-reuse study (Fig. 8).

use crate::graph::{Dnn, LayerId};
use crate::layer::PoolKind;
use crate::region::FmapShape;

use super::Net;

/// Classic Inception v1 module with four branches.
// One argument per branch width, matching how the paper's Table II
// (and the original GoogLeNet table) specifies the module.
#[allow(clippy::too_many_arguments)]
fn inception_v1(
    n: &mut Net,
    name: &str,
    from: LayerId,
    c1: u32,
    c3r: u32,
    c3: u32,
    c5r: u32,
    c5: u32,
    pp: u32,
) -> LayerId {
    let b1 = n.conv(&format!("{name}_1x1"), from, c1, 1, 1, 0);
    let b2a = n.conv(&format!("{name}_3x3r"), from, c3r, 1, 1, 0);
    let b2 = n.conv(&format!("{name}_3x3"), b2a, c3, 3, 1, 1);
    let b3a = n.conv(&format!("{name}_5x5r"), from, c5r, 1, 1, 0);
    let b3 = n.conv(&format!("{name}_5x5"), b3a, c5, 5, 1, 2);
    let b4a = n.pool(&format!("{name}_pool"), from, PoolKind::Max, 3, 1, 1);
    let b4 = n.conv(&format!("{name}_poolproj"), b4a, pp, 1, 1, 0);
    n.concat(&format!("{name}_cat"), &[b1, b2, b3, b4])
}

/// GoogLeNet (Inception v1) at 224x224 (~1.5 GMACs).
///
/// ```
/// let d = gemini_model::zoo::googlenet();
/// assert_eq!(d.name(), "gn");
/// assert!((1.2..1.9).contains(&(d.total_macs(1) as f64 / 1e9)));
/// ```
pub fn googlenet() -> Dnn {
    let mut n = Net::new("gn");
    let x = n.input(FmapShape::new(224, 224, 3));
    let c1 = n.conv("conv1", x, 64, 7, 2, 3);
    let p1 = n.maxpool("pool1", c1, 3, 2, 1);
    let c2 = n.conv("conv2r", p1, 64, 1, 1, 0);
    let c3 = n.conv("conv2", c2, 192, 3, 1, 1);
    let p2 = n.maxpool("pool2", c3, 3, 2, 1);

    let i3a = inception_v1(&mut n, "3a", p2, 64, 96, 128, 16, 32, 32);
    let i3b = inception_v1(&mut n, "3b", i3a, 128, 128, 192, 32, 96, 64);
    let p3 = n.maxpool("pool3", i3b, 3, 2, 1);

    let i4a = inception_v1(&mut n, "4a", p3, 192, 96, 208, 16, 48, 64);
    let i4b = inception_v1(&mut n, "4b", i4a, 160, 112, 224, 24, 64, 64);
    let i4c = inception_v1(&mut n, "4c", i4b, 128, 128, 256, 24, 64, 64);
    let i4d = inception_v1(&mut n, "4d", i4c, 112, 144, 288, 32, 64, 64);
    let i4e = inception_v1(&mut n, "4e", i4d, 256, 160, 320, 32, 128, 128);
    let p4 = n.maxpool("pool4", i4e, 3, 2, 1);

    let i5a = inception_v1(&mut n, "5a", p4, 256, 160, 320, 32, 128, 128);
    let i5b = inception_v1(&mut n, "5b", i5a, 384, 192, 384, 48, 128, 128);
    let gap = n.global_avgpool("gap", i5b);
    n.fc("fc", gap, 1000);
    n.build()
}

/// Inception-ResNet-A block (35x35 grid).
fn block35(n: &mut Net, name: &str, from: LayerId) -> LayerId {
    let b0 = n.conv(&format!("{name}_b0"), from, 32, 1, 1, 0);
    let b1a = n.conv(&format!("{name}_b1a"), from, 32, 1, 1, 0);
    let b1 = n.conv(&format!("{name}_b1b"), b1a, 32, 3, 1, 1);
    let b2a = n.conv(&format!("{name}_b2a"), from, 32, 1, 1, 0);
    let b2b = n.conv(&format!("{name}_b2b"), b2a, 32, 3, 1, 1);
    let b2 = n.conv(&format!("{name}_b2c"), b2b, 32, 3, 1, 1);
    let cat = n.concat(&format!("{name}_cat"), &[b0, b1, b2]);
    let up = n.conv(&format!("{name}_up"), cat, 256, 1, 1, 0);
    n.eltwise(&format!("{name}_add"), &[up, from])
}

/// Inception-ResNet-B block (17x17 grid) with asymmetric 1x7/7x1 convs.
fn block17(n: &mut Net, name: &str, from: LayerId) -> LayerId {
    let b0 = n.conv(&format!("{name}_b0"), from, 128, 1, 1, 0);
    let b1a = n.conv(&format!("{name}_b1a"), from, 128, 1, 1, 0);
    let b1b = n.conv_asym(&format!("{name}_b1b"), b1a, 128, (1, 7), (0, 3));
    let b1 = n.conv_asym(&format!("{name}_b1c"), b1b, 128, (7, 1), (3, 0));
    let cat = n.concat(&format!("{name}_cat"), &[b0, b1]);
    let up = n.conv(&format!("{name}_up"), cat, 896, 1, 1, 0);
    n.eltwise(&format!("{name}_add"), &[up, from])
}

/// Inception-ResNet-C block (8x8 grid) with asymmetric 1x3/3x1 convs.
fn block8(n: &mut Net, name: &str, from: LayerId) -> LayerId {
    let b0 = n.conv(&format!("{name}_b0"), from, 192, 1, 1, 0);
    let b1a = n.conv(&format!("{name}_b1a"), from, 192, 1, 1, 0);
    let b1b = n.conv_asym(&format!("{name}_b1b"), b1a, 192, (1, 3), (0, 1));
    let b1 = n.conv_asym(&format!("{name}_b1c"), b1b, 192, (3, 1), (1, 0));
    let cat = n.concat(&format!("{name}_cat"), &[b0, b1]);
    let up = n.conv(&format!("{name}_up"), cat, 1792, 1, 1, 0);
    n.eltwise(&format!("{name}_add"), &[up, from])
}

/// Inception-ResNet-v1 at 299x299 (~5.7 GMACs with the 5/10/5 block
/// schedule).
pub fn inception_resnet_v1() -> Dnn {
    let mut n = Net::new("ires");
    let x = n.input(FmapShape::new(299, 299, 3));
    // Stem.
    let c1 = n.conv("stem_c1", x, 32, 3, 2, 0); // 149
    let c2 = n.conv("stem_c2", c1, 32, 3, 1, 0); // 147
    let c3 = n.conv("stem_c3", c2, 64, 3, 1, 1); // 147
    let p1 = n.maxpool("stem_p1", c3, 3, 2, 0); // 73
    let c4 = n.conv("stem_c4", p1, 80, 1, 1, 0);
    let c5 = n.conv("stem_c5", c4, 192, 3, 1, 0); // 71
    let mut cur = n.conv("stem_c6", c5, 256, 3, 2, 0); // 35

    for i in 0..5 {
        cur = block35(&mut n, &format!("a{i}"), cur);
    }

    // Reduction-A: 35 -> 17.
    let ra0 = n.conv("ra_b0", cur, 384, 3, 2, 0);
    let ra1a = n.conv("ra_b1a", cur, 192, 1, 1, 0);
    let ra1b = n.conv("ra_b1b", ra1a, 192, 3, 1, 1);
    let ra1 = n.conv("ra_b1c", ra1b, 256, 3, 2, 0);
    let rap = n.maxpool("ra_pool", cur, 3, 2, 0);
    cur = n.concat("ra_cat", &[ra0, ra1, rap]); // 384+256+256 = 896

    for i in 0..10 {
        cur = block17(&mut n, &format!("b{i}"), cur);
    }

    // Reduction-B: 17 -> 8.
    let rb0a = n.conv("rb_b0a", cur, 256, 1, 1, 0);
    let rb0 = n.conv("rb_b0b", rb0a, 384, 3, 2, 0);
    let rb1a = n.conv("rb_b1a", cur, 256, 1, 1, 0);
    let rb1 = n.conv("rb_b1b", rb1a, 256, 3, 2, 0);
    let rb2a = n.conv("rb_b2a", cur, 256, 1, 1, 0);
    let rb2b = n.conv("rb_b2b", rb2a, 256, 3, 1, 1);
    let rb2 = n.conv("rb_b2c", rb2b, 256, 3, 2, 0);
    let rbp = n.maxpool("rb_pool", cur, 3, 2, 0);
    cur = n.concat("rb_cat", &[rb0, rb1, rb2, rbp]); // 384+256+256+896 = 1792

    for i in 0..5 {
        cur = block8(&mut n, &format!("c{i}"), cur);
    }

    let gap = n.global_avgpool("gap", cur);
    n.fc("fc", gap, 1000);
    n.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn googlenet_grid_sizes() {
        let d = googlenet();
        // Find the 4e concat: should be 14x14x832.
        let l = d.layers().iter().find(|l| l.name == "4e_cat").unwrap();
        assert_eq!((l.ofmap.h, l.ofmap.w, l.ofmap.c), (14, 14, 832));
        let l5 = d.layers().iter().find(|l| l.name == "5b_cat").unwrap();
        assert_eq!((l5.ofmap.h, l5.ofmap.w, l5.ofmap.c), (7, 7, 1024));
    }

    #[test]
    fn ires_grid_sizes() {
        let d = inception_resnet_v1();
        let ra = d.layers().iter().find(|l| l.name == "ra_cat").unwrap();
        assert_eq!((ra.ofmap.h, ra.ofmap.c), (17, 896));
        let rb = d.layers().iter().find(|l| l.name == "rb_cat").unwrap();
        assert_eq!((rb.ofmap.h, rb.ofmap.c), (8, 1792));
    }

    #[test]
    fn ires_has_asymmetric_kernels() {
        let d = inception_resnet_v1();
        let asym = d
            .layers()
            .iter()
            .any(|l| matches!(l.kind, LayerKind::Conv(p) if p.kernel == (1, 7)));
        assert!(asym);
    }
}
