//! Layer intermediate representation.
//!
//! Each [`Layer`] knows its output shape and how to answer the three
//! questions the evaluator asks of a workload:
//!
//! 1. how many MACs / vector ops does an output element cost,
//! 2. how many weight bytes does the layer carry, and
//! 3. which *region* of each predecessor's output does a given region of
//!    this layer's output depend on (halo-aware input inference).

use serde::{Deserialize, Serialize};

use crate::region::{FmapShape, Range1, Region};

/// Parameters of a (possibly grouped / depthwise) convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvParams {
    /// Kernel height and width (R, S).
    pub kernel: (u32, u32),
    /// Stride in (h, w).
    pub stride: (u32, u32),
    /// Padding in (h, w).
    pub pad: (u32, u32),
    /// Number of groups (1 = dense, `cin` = depthwise).
    pub groups: u32,
    /// Input channels.
    pub cin: u32,
}

impl ConvParams {
    /// Dense convolution parameters.
    pub fn dense(kernel: (u32, u32), stride: (u32, u32), pad: (u32, u32), cin: u32) -> Self {
        Self {
            kernel,
            stride,
            pad,
            groups: 1,
            cin,
        }
    }

    /// Output spatial size produced from an input spatial size.
    pub fn out_dim(&self, in_h: u32, in_w: u32) -> (u32, u32) {
        let oh = (in_h + 2 * self.pad.0).saturating_sub(self.kernel.0) / self.stride.0 + 1;
        let ow = (in_w + 2 * self.pad.1).saturating_sub(self.kernel.1) / self.stride.1 + 1;
        (oh, ow)
    }
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Parameters of a pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolParams {
    /// Pooling window (h, w).
    pub kernel: (u32, u32),
    /// Stride (h, w).
    pub stride: (u32, u32),
    /// Padding (h, w).
    pub pad: (u32, u32),
    /// Max or average.
    pub kind: PoolKind,
}

/// Element-wise / normalization operators executed on the vector unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActKind {
    /// Rectified linear unit (elementwise).
    Relu,
    /// GELU (elementwise, more expensive).
    Gelu,
    /// Softmax over the channel dimension (channel reduction).
    Softmax,
    /// Layer normalization over the channel dimension (channel reduction).
    LayerNorm,
}

impl ActKind {
    /// Whether the operator reduces over the channel dimension, i.e. an
    /// output element needs *all* input channels at its position.
    pub fn reduces_channels(&self) -> bool {
        matches!(self, ActKind::Softmax | ActKind::LayerNorm)
    }
}

/// What the second operand of a [`LayerKind::Matmul`] is.
///
/// Transformers contain matmuls whose second operand is itself an
/// activation (Q·Kᵀ and A·V); these create core-to-core data flows instead
/// of weight fetches, which is exactly the traffic Fig. 9 of the paper
/// visualizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatmulOperand {
    /// Second operand is a trained weight matrix of `k_dim x ofmap.c`.
    Weight,
    /// Second operand comes from predecessor 1; an output-channel slice
    /// `k` of this layer needs *rows* `k` of the predecessor (Q·Kᵀ:
    /// output column j is produced from row j of K).
    ActRowSlice,
    /// Second operand comes from predecessor 1; an output-channel slice
    /// `k` needs *channels* `k` of the predecessor over all rows (A·V:
    /// output column j is produced from column j of V).
    ActChanSlice,
}

/// The operator a layer performs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// The DNN's external input (resides in DRAM; never computed).
    Input,
    /// (Grouped / depthwise) convolution.
    Conv(ConvParams),
    /// Pooling.
    Pool(PoolParams),
    /// Fully-connected layer consuming the entire flattened input.
    Fc {
        /// Flattened input length.
        cin: u32,
    },
    /// General matrix multiply with reduction length `k_dim`.
    Matmul {
        /// Reduction (inner) dimension length.
        k_dim: u32,
        /// Nature of the second operand.
        operand: MatmulOperand,
    },
    /// Element-wise combination (e.g. residual add) of `n_inputs` tensors.
    Eltwise {
        /// Number of combined inputs.
        n_inputs: u32,
    },
    /// Vector-unit operator (activation / normalization).
    Activation(ActKind),
    /// Channel concatenation of the predecessors.
    Concat,
}

/// A single DNN layer: a named operator plus its output shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable unique name.
    pub name: String,
    /// Operator.
    pub kind: LayerKind,
    /// Output feature-map shape (per sample).
    pub ofmap: FmapShape,
}

impl Layer {
    /// Creates a layer.
    pub fn new(name: impl Into<String>, kind: LayerKind, ofmap: FmapShape) -> Self {
        Self {
            name: name.into(),
            kind,
            ofmap,
        }
    }

    /// MACs required per output element (the reduction length). Zero for
    /// vector-only layers.
    pub fn macs_per_out(&self) -> u64 {
        match &self.kind {
            LayerKind::Conv(p) => p.kernel.0 as u64 * p.kernel.1 as u64 * (p.cin / p.groups) as u64,
            LayerKind::Fc { cin } => *cin as u64,
            LayerKind::Matmul { k_dim, .. } => *k_dim as u64,
            _ => 0,
        }
    }

    /// Vector-unit operations per output element (post-processing such as
    /// BN+ReLU on conv outputs counts as one op).
    pub fn vector_ops_per_out(&self) -> u64 {
        match &self.kind {
            LayerKind::Conv(_) | LayerKind::Fc { .. } | LayerKind::Matmul { .. } => 1,
            LayerKind::Pool(p) => p.kernel.0 as u64 * p.kernel.1 as u64,
            LayerKind::Eltwise { n_inputs } => *n_inputs as u64,
            LayerKind::Activation(a) => match a {
                ActKind::Relu => 1,
                ActKind::Gelu => 4,
                ActKind::Softmax => 4,
                ActKind::LayerNorm => 6,
            },
            LayerKind::Concat | LayerKind::Input => 0,
        }
    }

    /// Total bytes of trained weights the layer carries (int8).
    pub fn weight_bytes(&self) -> u64 {
        match &self.kind {
            LayerKind::Conv(p) => {
                p.kernel.0 as u64
                    * p.kernel.1 as u64
                    * (p.cin / p.groups) as u64
                    * self.ofmap.c as u64
            }
            LayerKind::Fc { cin } => *cin as u64 * self.ofmap.c as u64,
            LayerKind::Matmul {
                k_dim,
                operand: MatmulOperand::Weight,
            } => *k_dim as u64 * self.ofmap.c as u64,
            _ => 0,
        }
    }

    /// Whether the layer carries weights (determines whether the `WGT`
    /// entry of its flow-of-data attribute must be explicitly managed).
    pub fn has_weights(&self) -> bool {
        self.weight_bytes() > 0
    }

    /// Whether this is the pseudo-layer representing the DNN input.
    pub fn is_input(&self) -> bool {
        matches!(self.kind, LayerKind::Input)
    }

    /// Number of predecessors this layer kind expects (`None` = two or
    /// more, checked by the graph builder).
    pub fn expected_preds(&self) -> Option<usize> {
        match &self.kind {
            LayerKind::Input => Some(0),
            LayerKind::Conv(_)
            | LayerKind::Pool(_)
            | LayerKind::Fc { .. }
            | LayerKind::Activation(_) => Some(1),
            LayerKind::Matmul { operand, .. } => match operand {
                MatmulOperand::Weight => Some(1),
                _ => Some(2),
            },
            LayerKind::Eltwise { n_inputs } => Some(*n_inputs as usize),
            LayerKind::Concat => None,
        }
    }

    /// Total MACs for `batch` samples.
    pub fn macs(&self, batch: u32) -> u64 {
        self.ofmap.elems() * batch as u64 * self.macs_per_out()
    }

    /// Region of predecessor `pred_idx`'s output that a region `out` of
    /// this layer's output depends on.
    ///
    /// `pred_shape` is the predecessor's per-sample output shape and
    /// `concat_offset` the channel offset of that predecessor inside a
    /// [`LayerKind::Concat`] output (zero otherwise). Halos of strided /
    /// windowed operators are included; grouped convolutions map output
    /// channel ranges to their input-channel group slice.
    pub fn input_need(
        &self,
        pred_idx: usize,
        pred_shape: FmapShape,
        concat_offset: u32,
        out: &Region,
    ) -> Region {
        let b = out.b;
        match &self.kind {
            LayerKind::Input => unreachable!("input pseudo-layers have no predecessors"),
            LayerKind::Conv(p) => {
                let h = window_need(out.h, p.kernel.0, p.stride.0, p.pad.0, pred_shape.h);
                let w = window_need(out.w, p.kernel.1, p.stride.1, p.pad.1, pred_shape.w);
                let k = if p.groups == 1 {
                    Range1::full(pred_shape.c)
                } else {
                    group_chan_need(out.k, self.ofmap.c, p.cin, p.groups)
                };
                Region::new(h, w, k, b)
            }
            LayerKind::Pool(p) => {
                let h = window_need(out.h, p.kernel.0, p.stride.0, p.pad.0, pred_shape.h);
                let w = window_need(out.w, p.kernel.1, p.stride.1, p.pad.1, pred_shape.w);
                // Pooling is per-channel: channel need equals the output
                // channel range.
                Region::new(h, w, out.k, b)
            }
            LayerKind::Fc { .. } => {
                // FC flattens the whole input: every output element needs
                // the entire predecessor sample.
                Region::new(
                    Range1::full(pred_shape.h),
                    Range1::full(pred_shape.w),
                    Range1::full(pred_shape.c),
                    b,
                )
            }
            LayerKind::Matmul { operand, .. } => match (pred_idx, operand) {
                // Operand A: rows of the output slice rows of A.
                (0, _) => Region::new(
                    out.h,
                    Range1::full(pred_shape.w),
                    Range1::full(pred_shape.c),
                    b,
                ),
                (1, MatmulOperand::ActRowSlice) => Region::new(
                    out.k,
                    Range1::full(pred_shape.w),
                    Range1::full(pred_shape.c),
                    b,
                ),
                (1, MatmulOperand::ActChanSlice) => Region::new(
                    Range1::full(pred_shape.h),
                    Range1::full(pred_shape.w),
                    out.k,
                    b,
                ),
                _ => unreachable!("matmul has at most two activation operands"),
            },
            LayerKind::Eltwise { .. } => Region::new(out.h, out.w, out.k, b),
            LayerKind::Activation(a) => {
                if a.reduces_channels() {
                    Region::new(out.h, out.w, Range1::full(pred_shape.c), b)
                } else {
                    Region::new(out.h, out.w, out.k, b)
                }
            }
            LayerKind::Concat => {
                // This predecessor occupies output channels
                // [concat_offset, concat_offset + pred.c).
                let own = Range1::new(concat_offset, concat_offset + pred_shape.c);
                let hit = out.k.intersect(&own);
                let k = hit.shift(-(concat_offset as i64));
                Region::new(out.h, out.w, k, b)
            }
        }
    }
}

/// Input range needed by an output range of a windowed operator
/// (convolution / pooling), clamped to the input extent.
fn window_need(out: Range1, kernel: u32, stride: u32, pad: u32, in_len: u32) -> Range1 {
    if out.is_empty() {
        return Range1::new(0, 0);
    }
    let start = (out.start as i64) * stride as i64 - pad as i64;
    let end = (out.end as i64 - 1) * stride as i64 - pad as i64 + kernel as i64;
    let s = start.max(0) as u32;
    let e = (end.max(0) as u32).min(in_len);
    Range1::new(s, e)
}

/// Input-channel range touched by an output-channel range of a grouped
/// convolution.
fn group_chan_need(out_k: Range1, cout: u32, cin: u32, groups: u32) -> Range1 {
    if out_k.is_empty() {
        return Range1::new(0, 0);
    }
    let gout = cout / groups;
    let gin = cin / groups;
    let g0 = out_k.start / gout;
    let g1 = out_k.end.div_ceil(gout);
    Range1::new(g0 * gin, (g1 * gin).min(cin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::split_dim;

    fn conv_layer(kernel: u32, stride: u32, pad: u32, cin: u32, cout: u32, oh: u32) -> Layer {
        Layer::new(
            "c",
            LayerKind::Conv(ConvParams::dense(
                (kernel, kernel),
                (stride, stride),
                (pad, pad),
                cin,
            )),
            FmapShape::new(oh, oh, cout),
        )
    }

    #[test]
    fn conv_macs_and_weights() {
        let l = conv_layer(3, 1, 1, 64, 128, 56);
        assert_eq!(l.macs_per_out(), 3 * 3 * 64);
        assert_eq!(l.weight_bytes(), 3 * 3 * 64 * 128);
        assert!(l.has_weights());
        assert_eq!(l.macs(2), 56 * 56 * 128 * 2 * 9 * 64);
    }

    #[test]
    fn grouped_conv_scales_down() {
        let dense = conv_layer(3, 1, 1, 128, 256, 28);
        let mut grouped = dense.clone();
        if let LayerKind::Conv(ref mut p) = grouped.kind {
            p.groups = 32;
        }
        assert_eq!(grouped.macs_per_out() * 32, dense.macs_per_out());
        assert_eq!(grouped.weight_bytes() * 32, dense.weight_bytes());
    }

    #[test]
    fn conv_halo_includes_neighbours() {
        // 3x3 stride-1 pad-1 conv: output rows [0,4) need input rows
        // [0,5) out of 8 (one halo row below).
        let l = conv_layer(3, 1, 1, 16, 16, 8);
        let out = Region::new(
            Range1::new(0, 4),
            Range1::full(8),
            Range1::full(16),
            Range1::full(1),
        );
        let need = l.input_need(0, FmapShape::new(8, 8, 16), 0, &out);
        assert_eq!(need.h, Range1::new(0, 5));
        assert_eq!(need.w, Range1::full(8));
        assert_eq!(need.k, Range1::full(16));
    }

    #[test]
    fn strided_conv_need() {
        // 3x3 stride-2 pad-1, in 8 -> out 4. Output rows [2,4) need input
        // rows [2*2-1, 3*2-1+3) = [3, 8).
        let l = conv_layer(3, 2, 1, 16, 16, 4);
        let out = Region::new(
            Range1::new(2, 4),
            Range1::full(4),
            Range1::full(16),
            Range1::full(1),
        );
        let need = l.input_need(0, FmapShape::new(8, 8, 16), 0, &out);
        assert_eq!(need.h, Range1::new(3, 8));
    }

    #[test]
    fn depthwise_channel_slices() {
        let l = Layer::new(
            "dw",
            LayerKind::Conv(ConvParams {
                kernel: (3, 3),
                stride: (1, 1),
                pad: (1, 1),
                groups: 64,
                cin: 64,
            }),
            FmapShape::new(14, 14, 64),
        );
        let out = Region::new(
            Range1::full(14),
            Range1::full(14),
            Range1::new(16, 32),
            Range1::full(1),
        );
        let need = l.input_need(0, FmapShape::new(14, 14, 64), 0, &out);
        assert_eq!(need.k, Range1::new(16, 32));
        assert_eq!(l.macs_per_out(), 9);
    }

    #[test]
    fn fc_needs_everything() {
        let l = Layer::new(
            "fc",
            LayerKind::Fc { cin: 2048 },
            FmapShape::new(1, 1, 1000),
        );
        let out = Region::new(
            Range1::full(1),
            Range1::full(1),
            Range1::new(0, 10),
            Range1::full(4),
        );
        let need = l.input_need(0, FmapShape::new(1, 1, 2048), 0, &out);
        assert_eq!(need.k, Range1::full(2048));
        assert_eq!(need.b, Range1::full(4));
        assert_eq!(l.weight_bytes(), 2048 * 1000);
    }

    #[test]
    fn matmul_row_and_chan_slices() {
        // Q.K^T: out (seq=64, c=64), k_dim=512.
        let qkt = Layer::new(
            "qkt",
            LayerKind::Matmul {
                k_dim: 512,
                operand: MatmulOperand::ActRowSlice,
            },
            FmapShape::new(64, 1, 64),
        );
        let out = Region::new(
            Range1::new(0, 16),
            Range1::full(1),
            Range1::new(32, 48),
            Range1::full(1),
        );
        let k_shape = FmapShape::new(64, 1, 512);
        let a_need = qkt.input_need(0, k_shape, 0, &out);
        assert_eq!(a_need.h, Range1::new(0, 16));
        assert_eq!(a_need.k, Range1::full(512));
        let b_need = qkt.input_need(1, k_shape, 0, &out);
        assert_eq!(
            b_need.h,
            Range1::new(32, 48),
            "Q.K^T needs K rows = out cols"
        );

        // A.V: out (seq, dv) ; V is (seq, dv).
        let av = Layer::new(
            "av",
            LayerKind::Matmul {
                k_dim: 64,
                operand: MatmulOperand::ActChanSlice,
            },
            FmapShape::new(64, 1, 512),
        );
        let v_shape = FmapShape::new(64, 1, 512);
        let out = Region::new(
            Range1::new(0, 8),
            Range1::full(1),
            Range1::new(0, 128),
            Range1::full(1),
        );
        let v_need = av.input_need(1, v_shape, 0, &out);
        assert_eq!(v_need.h, Range1::full(64), "A.V needs all V rows");
        assert_eq!(v_need.k, Range1::new(0, 128));
    }

    #[test]
    fn concat_routes_channel_slices() {
        let l = Layer::new("cat", LayerKind::Concat, FmapShape::new(28, 28, 96));
        // Pred 1 occupies channels [64, 96).
        let p1 = FmapShape::new(28, 28, 32);
        let out_low = Region::new(
            Range1::full(28),
            Range1::full(28),
            Range1::new(0, 64),
            Range1::full(1),
        );
        assert!(l.input_need(1, p1, 64, &out_low).is_empty());
        let out_hi = Region::new(
            Range1::full(28),
            Range1::full(28),
            Range1::new(64, 96),
            Range1::full(1),
        );
        let need = l.input_need(1, p1, 64, &out_hi);
        assert_eq!(need.k, Range1::new(0, 32));
    }

    #[test]
    fn softmax_reduces_channels() {
        let l = Layer::new(
            "sm",
            LayerKind::Activation(ActKind::Softmax),
            FmapShape::new(64, 1, 64),
        );
        let out = Region::new(
            Range1::new(0, 8),
            Range1::full(1),
            Range1::new(0, 16),
            Range1::full(1),
        );
        let need = l.input_need(0, FmapShape::new(64, 1, 64), 0, &out);
        assert_eq!(need.k, Range1::full(64));
        assert!(l.vector_ops_per_out() > 1);
        assert_eq!(l.macs_per_out(), 0);
    }

    #[test]
    fn window_need_clamps_to_input() {
        // 7x7 stride-2 pad-3 on 224 input: out rows [110,112) need rows
        // up to min(224, 111*2-3+7)=224.
        let r = window_need(Range1::new(110, 112), 7, 2, 3, 224);
        assert_eq!(r.end, 224);
    }

    #[test]
    fn part_split_plus_need_covers_input() {
        // Union of needs of all H-parts must cover the whole input height.
        let l = conv_layer(3, 1, 1, 8, 8, 56);
        let mut covered = [false; 56];
        for i in 0..4 {
            let hr = split_dim(56, 4, i);
            let out = Region::new(hr, Range1::full(56), Range1::full(8), Range1::full(1));
            let need = l.input_need(0, FmapShape::new(56, 56, 8), 0, &out);
            for h in need.h.start..need.h.end {
                covered[h as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn expected_pred_counts() {
        assert_eq!(conv_layer(3, 1, 1, 8, 8, 8).expected_preds(), Some(1));
        let e = Layer::new(
            "e",
            LayerKind::Eltwise { n_inputs: 2 },
            FmapShape::new(8, 8, 8),
        );
        assert_eq!(e.expected_preds(), Some(2));
        let c = Layer::new("c", LayerKind::Concat, FmapShape::new(8, 8, 8));
        assert_eq!(c.expected_preds(), None);
    }
}
