//! DNN directed acyclic graphs.
//!
//! A [`Dnn`] is a topologically-ordered list of [`Layer`]s plus the
//! predecessor/successor structure. Construction goes through
//! [`DnnBuilder`], which validates shape compatibility for every operator
//! so that malformed graphs are rejected at build time rather than deep
//! inside the evaluator.

use serde::{Deserialize, Serialize};

use crate::layer::{Layer, LayerKind};
use crate::region::{FmapShape, Region};

/// Index of a layer inside its [`Dnn`]. Layers are numbered in
/// topological order: every predecessor id is smaller than its consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerId(pub u32);

impl LayerId {
    /// The index as `usize`.
    pub fn idx(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A validated DNN computation graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dnn {
    name: String,
    layers: Vec<Layer>,
    preds: Vec<Vec<LayerId>>,
    succs: Vec<Vec<LayerId>>,
    /// Channel offset of each predecessor inside a concat output (zeros
    /// for non-concat layers).
    concat_offsets: Vec<Vec<u32>>,
}

impl Dnn {
    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers (including `Input` pseudo-layers).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the graph has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.idx()]
    }

    /// All layers in topological order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Ids of all layers in topological order.
    pub fn ids(&self) -> impl Iterator<Item = LayerId> + '_ {
        (0..self.layers.len() as u32).map(LayerId)
    }

    /// Ids of computable layers (everything except `Input` pseudo-layers).
    pub fn compute_ids(&self) -> impl Iterator<Item = LayerId> + '_ {
        self.ids().filter(|id| !self.layer(*id).is_input())
    }

    /// Predecessors of a layer.
    pub fn preds(&self, id: LayerId) -> &[LayerId] {
        &self.preds[id.idx()]
    }

    /// Successors of a layer.
    pub fn succs(&self, id: LayerId) -> &[LayerId] {
        &self.succs[id.idx()]
    }

    /// Layers with no successors (the DNN outputs).
    pub fn outputs(&self) -> Vec<LayerId> {
        self.ids().filter(|id| self.succs(*id).is_empty()).collect()
    }

    /// `Input` pseudo-layers.
    pub fn inputs(&self) -> Vec<LayerId> {
        self.ids().filter(|id| self.layer(*id).is_input()).collect()
    }

    /// Region of predecessor `pred_pos`'s output that region `out` of
    /// layer `id`'s output depends on.
    pub fn input_need(&self, id: LayerId, pred_pos: usize, out: &Region) -> Region {
        let pred_id = self.preds(id)[pred_pos];
        let pred_shape = self.layer(pred_id).ofmap;
        let off = self.concat_offsets[id.idx()]
            .get(pred_pos)
            .copied()
            .unwrap_or(0);
        self.layer(id).input_need(pred_pos, pred_shape, off, out)
    }

    /// Total MACs to process `batch` samples.
    pub fn total_macs(&self, batch: u32) -> u64 {
        self.layers.iter().map(|l| l.macs(batch)).sum()
    }

    /// Total weight bytes across all layers.
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes()).sum()
    }

    /// One-line-per-fact workload summary (layer census, arithmetic
    /// totals, structural depth) — what a user inspects before choosing
    /// batch sizes and architecture candidates.
    pub fn summary(&self) -> DnnSummary {
        use crate::layer::LayerKind;
        let mut s = DnnSummary {
            name: self.name.clone(),
            layers: 0,
            convs: 0,
            matmuls: 0,
            vector_layers: 0,
            gmacs_per_sample: self.total_macs(1) as f64 / 1e9,
            weight_mb: self.total_weight_bytes() as f64 / 1e6,
            activation_mb: 0.0,
            depth: 0,
        };
        let mut act_bytes = 0u64;
        for l in &self.layers {
            match &l.kind {
                LayerKind::Input => continue,
                LayerKind::Conv(_) | LayerKind::Fc { .. } => s.convs += 1,
                LayerKind::Matmul { .. } => s.matmuls += 1,
                _ => s.vector_layers += 1,
            }
            s.layers += 1;
            act_bytes += l.ofmap.elems();
        }
        s.activation_mb = act_bytes as f64 / 1e6;
        let members: Vec<LayerId> = self.compute_ids().collect();
        s.depth = self.depth_within(&members);
        s
    }

    /// Length of the longest path (in computable layers) within the
    /// subset `members`, used as the pipeline depth of a layer group.
    pub fn depth_within(&self, members: &[LayerId]) -> u32 {
        let mut depth = vec![0u32; self.layers.len()];
        let inset: std::collections::HashSet<LayerId> = members.iter().copied().collect();
        let mut best = 0;
        for &id in members {
            let mut d = 1;
            for &p in self.preds(id) {
                if inset.contains(&p) {
                    d = d.max(depth[p.idx()] + 1);
                }
            }
            depth[id.idx()] = d;
            best = best.max(d);
        }
        best
    }
}

/// Workload summary produced by [`Dnn::summary`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DnnSummary {
    /// Model name.
    pub name: String,
    /// Computable layers (inputs excluded).
    pub layers: usize,
    /// Convolution / fully-connected layers.
    pub convs: usize,
    /// Matmul layers (incl. activation-operand matmuls).
    pub matmuls: usize,
    /// Vector-unit layers (pool / eltwise / activation / concat).
    pub vector_layers: usize,
    /// Giga-MACs per sample.
    pub gmacs_per_sample: f64,
    /// Trained weights in MB (int8).
    pub weight_mb: f64,
    /// Sum of per-layer output feature maps in MB per sample.
    pub activation_mb: f64,
    /// Longest dependency chain of computable layers.
    pub depth: u32,
}

impl std::fmt::Display for DnnSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} layers ({} conv/fc, {} matmul, {} vector), depth {}, \
             {:.2} GMACs, {:.1} MB weights, {:.1} MB activations",
            self.name,
            self.layers,
            self.convs,
            self.matmuls,
            self.vector_layers,
            self.depth,
            self.gmacs_per_sample,
            self.weight_mb,
            self.activation_mb
        )
    }
}

/// Errors produced while building a [`Dnn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A predecessor id does not refer to an earlier layer.
    BadPred {
        /// Layer being added.
        layer: String,
        /// Offending predecessor id.
        pred: u32,
    },
    /// A layer got the wrong number of predecessors.
    PredCount {
        /// Layer being added.
        layer: String,
        /// Expected count (`None` = at least two).
        expected: Option<usize>,
        /// Actual count.
        got: usize,
    },
    /// Shapes are inconsistent with the operator.
    ShapeMismatch {
        /// Layer being added.
        layer: String,
        /// Description of the inconsistency.
        detail: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::BadPred { layer, pred } => {
                write!(
                    f,
                    "layer `{layer}`: predecessor id {pred} is not an earlier layer"
                )
            }
            GraphError::PredCount {
                layer,
                expected,
                got,
            } => match expected {
                Some(e) => write!(f, "layer `{layer}`: expected {e} predecessors, got {got}"),
                None => write!(f, "layer `{layer}`: expected >= 2 predecessors, got {got}"),
            },
            GraphError::ShapeMismatch { layer, detail } => {
                write!(f, "layer `{layer}`: shape mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental, validating builder for [`Dnn`] graphs.
///
/// # Example
///
/// ```
/// use gemini_model::{ConvParams, DnnBuilder, FmapShape, LayerKind};
///
/// # fn main() -> Result<(), gemini_model::graph::GraphError> {
/// let mut b = DnnBuilder::new("tiny");
/// let input = b.input(FmapShape::new(8, 8, 3));
/// let conv = b.add(
///     "conv1",
///     LayerKind::Conv(ConvParams::dense((3, 3), (1, 1), (1, 1), 3)),
///     FmapShape::new(8, 8, 16),
///     &[input],
/// )?;
/// let dnn = b.build();
/// assert_eq!(dnn.len(), 2);
/// assert_eq!(dnn.preds(conv), &[input]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DnnBuilder {
    name: String,
    layers: Vec<Layer>,
    preds: Vec<Vec<LayerId>>,
    concat_offsets: Vec<Vec<u32>>,
}

impl DnnBuilder {
    /// Starts building a graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            layers: Vec::new(),
            preds: Vec::new(),
            concat_offsets: Vec::new(),
        }
    }

    /// Adds the DNN input pseudo-layer.
    pub fn input(&mut self, shape: FmapShape) -> LayerId {
        self.push(
            Layer::new(
                format!("input{}", self.layers.len()),
                LayerKind::Input,
                shape,
            ),
            vec![],
            vec![],
        )
    }

    /// Adds a layer, validating predecessor count and shape consistency.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if a predecessor id is out of range, the
    /// predecessor count is wrong for the operator, or shapes do not line
    /// up (conv arithmetic, eltwise shape equality, concat channel sums,
    /// matmul operand dimensions).
    pub fn add(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        ofmap: FmapShape,
        preds: &[LayerId],
    ) -> Result<LayerId, GraphError> {
        let name = name.into();
        let layer = Layer::new(name.clone(), kind, ofmap);
        for p in preds {
            if p.idx() >= self.layers.len() {
                return Err(GraphError::BadPred {
                    layer: name,
                    pred: p.0,
                });
            }
        }
        match layer.expected_preds() {
            Some(n) if n != preds.len() => {
                return Err(GraphError::PredCount {
                    layer: name,
                    expected: Some(n),
                    got: preds.len(),
                })
            }
            None if preds.len() < 2 => {
                return Err(GraphError::PredCount {
                    layer: name,
                    expected: None,
                    got: preds.len(),
                })
            }
            _ => {}
        }
        let offsets = self.validate_shapes(&layer, preds)?;
        Ok(self.push(layer, preds.to_vec(), offsets))
    }

    fn validate_shapes(&self, layer: &Layer, preds: &[LayerId]) -> Result<Vec<u32>, GraphError> {
        let shape_of = |id: LayerId| self.layers[id.idx()].ofmap;
        let err = |detail: String| GraphError::ShapeMismatch {
            layer: layer.name.clone(),
            detail,
        };
        let mut offsets = vec![0u32; preds.len()];
        match &layer.kind {
            LayerKind::Input => {}
            LayerKind::Conv(p) => {
                let i = shape_of(preds[0]);
                if i.c != p.cin {
                    return Err(err(format!("conv cin {} != pred channels {}", p.cin, i.c)));
                }
                if p.groups == 0 || p.cin % p.groups != 0 || layer.ofmap.c % p.groups != 0 {
                    return Err(err(format!(
                        "groups {} must divide cin {} and cout {}",
                        p.groups, p.cin, layer.ofmap.c
                    )));
                }
                let (oh, ow) = p.out_dim(i.h, i.w);
                if (oh, ow) != (layer.ofmap.h, layer.ofmap.w) {
                    return Err(err(format!(
                        "conv arithmetic gives {}x{}, declared {}x{}",
                        oh, ow, layer.ofmap.h, layer.ofmap.w
                    )));
                }
            }
            LayerKind::Pool(p) => {
                let i = shape_of(preds[0]);
                if i.c != layer.ofmap.c {
                    return Err(err("pool must preserve channels".into()));
                }
                let oh = (i.h + 2 * p.pad.0).saturating_sub(p.kernel.0) / p.stride.0 + 1;
                let ow = (i.w + 2 * p.pad.1).saturating_sub(p.kernel.1) / p.stride.1 + 1;
                if (oh, ow) != (layer.ofmap.h, layer.ofmap.w) {
                    return Err(err(format!(
                        "pool arithmetic gives {}x{}, declared {}x{}",
                        oh, ow, layer.ofmap.h, layer.ofmap.w
                    )));
                }
            }
            LayerKind::Fc { cin } => {
                let i = shape_of(preds[0]);
                if i.elems() != *cin as u64 {
                    return Err(err(format!(
                        "fc cin {} != flattened pred size {}",
                        cin,
                        i.elems()
                    )));
                }
            }
            LayerKind::Matmul { k_dim, operand } => {
                let a = shape_of(preds[0]);
                if a.c != *k_dim {
                    return Err(err(format!("matmul k_dim {} != A channels {}", k_dim, a.c)));
                }
                if a.h != layer.ofmap.h {
                    return Err(err(format!(
                        "matmul A rows {} != out rows {}",
                        a.h, layer.ofmap.h
                    )));
                }
                match operand {
                    crate::layer::MatmulOperand::Weight => {}
                    crate::layer::MatmulOperand::ActRowSlice => {
                        let b = shape_of(preds[1]);
                        if b.h != layer.ofmap.c || b.c != *k_dim {
                            return Err(err(format!(
                                "row-slice operand must be {}x{}, got {}x{}",
                                layer.ofmap.c, k_dim, b.h, b.c
                            )));
                        }
                    }
                    crate::layer::MatmulOperand::ActChanSlice => {
                        let b = shape_of(preds[1]);
                        if b.c != layer.ofmap.c || b.h != *k_dim {
                            return Err(err(format!(
                                "chan-slice operand must be {}x{}, got {}x{}",
                                k_dim, layer.ofmap.c, b.h, b.c
                            )));
                        }
                    }
                }
            }
            LayerKind::Eltwise { .. } => {
                for p in preds {
                    if shape_of(*p) != layer.ofmap {
                        return Err(err(format!(
                            "eltwise input {} shape {} != output {}",
                            self.layers[p.idx()].name,
                            shape_of(*p),
                            layer.ofmap
                        )));
                    }
                }
            }
            LayerKind::Activation(_) => {
                if shape_of(preds[0]) != layer.ofmap {
                    return Err(err("activation must preserve shape".into()));
                }
            }
            LayerKind::Concat => {
                let mut off = 0u32;
                for (i, p) in preds.iter().enumerate() {
                    let s = shape_of(*p);
                    if (s.h, s.w) != (layer.ofmap.h, layer.ofmap.w) {
                        return Err(err("concat inputs must share spatial dims".into()));
                    }
                    offsets[i] = off;
                    off += s.c;
                }
                if off != layer.ofmap.c {
                    return Err(err(format!(
                        "concat channel sum {} != output channels {}",
                        off, layer.ofmap.c
                    )));
                }
            }
        }
        Ok(offsets)
    }

    fn push(&mut self, layer: Layer, preds: Vec<LayerId>, offsets: Vec<u32>) -> LayerId {
        let id = LayerId(self.layers.len() as u32);
        self.layers.push(layer);
        self.preds.push(preds);
        self.concat_offsets.push(offsets);
        id
    }

    /// Finalizes the graph, computing successor lists.
    pub fn build(self) -> Dnn {
        let mut succs = vec![Vec::new(); self.layers.len()];
        for (i, ps) in self.preds.iter().enumerate() {
            for p in ps {
                succs[p.idx()].push(LayerId(i as u32));
            }
        }
        Dnn {
            name: self.name,
            layers: self.layers,
            preds: self.preds,
            succs,
            concat_offsets: self.concat_offsets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ActKind, ConvParams, MatmulOperand, PoolKind, PoolParams};

    fn chain() -> Dnn {
        let mut b = DnnBuilder::new("chain");
        let i = b.input(FmapShape::new(8, 8, 3));
        let c1 = b
            .add(
                "c1",
                LayerKind::Conv(ConvParams::dense((3, 3), (1, 1), (1, 1), 3)),
                FmapShape::new(8, 8, 16),
                &[i],
            )
            .unwrap();
        let p = b
            .add(
                "p",
                LayerKind::Pool(PoolParams {
                    kernel: (2, 2),
                    stride: (2, 2),
                    pad: (0, 0),
                    kind: PoolKind::Max,
                }),
                FmapShape::new(4, 4, 16),
                &[c1],
            )
            .unwrap();
        b.add(
            "fc",
            LayerKind::Fc { cin: 256 },
            FmapShape::new(1, 1, 10),
            &[p],
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn topo_structure() {
        let d = chain();
        assert_eq!(d.len(), 4);
        assert_eq!(d.inputs(), vec![LayerId(0)]);
        assert_eq!(d.outputs(), vec![LayerId(3)]);
        assert_eq!(d.succs(LayerId(0)), &[LayerId(1)]);
        assert_eq!(d.preds(LayerId(3)), &[LayerId(2)]);
        assert_eq!(d.compute_ids().count(), 3);
    }

    #[test]
    fn conv_shape_checked() {
        let mut b = DnnBuilder::new("bad");
        let i = b.input(FmapShape::new(8, 8, 3));
        let r = b.add(
            "c",
            LayerKind::Conv(ConvParams::dense((3, 3), (1, 1), (0, 0), 3)),
            FmapShape::new(8, 8, 16), // wrong: no-pad 3x3 gives 6x6
            &[i],
        );
        assert!(matches!(r, Err(GraphError::ShapeMismatch { .. })));
    }

    #[test]
    fn conv_cin_checked() {
        let mut b = DnnBuilder::new("bad");
        let i = b.input(FmapShape::new(8, 8, 3));
        let r = b.add(
            "c",
            LayerKind::Conv(ConvParams::dense((1, 1), (1, 1), (0, 0), 4)),
            FmapShape::new(8, 8, 16),
            &[i],
        );
        assert!(matches!(r, Err(GraphError::ShapeMismatch { .. })));
    }

    #[test]
    fn pred_count_checked() {
        let mut b = DnnBuilder::new("bad");
        let i = b.input(FmapShape::new(8, 8, 4));
        let r = b.add(
            "e",
            LayerKind::Eltwise { n_inputs: 2 },
            FmapShape::new(8, 8, 4),
            &[i],
        );
        assert!(matches!(r, Err(GraphError::PredCount { .. })));
    }

    #[test]
    fn bad_pred_id_checked() {
        let mut b = DnnBuilder::new("bad");
        let _ = b.input(FmapShape::new(8, 8, 4));
        let r = b.add(
            "a",
            LayerKind::Activation(ActKind::Relu),
            FmapShape::new(8, 8, 4),
            &[LayerId(7)],
        );
        assert!(matches!(r, Err(GraphError::BadPred { .. })));
    }

    #[test]
    fn concat_offsets_used_by_input_need() {
        let mut b = DnnBuilder::new("cat");
        let i = b.input(FmapShape::new(8, 8, 4));
        let a = b
            .add(
                "a",
                LayerKind::Conv(ConvParams::dense((1, 1), (1, 1), (0, 0), 4)),
                FmapShape::new(8, 8, 8),
                &[i],
            )
            .unwrap();
        let c = b
            .add(
                "b",
                LayerKind::Conv(ConvParams::dense((1, 1), (1, 1), (0, 0), 4)),
                FmapShape::new(8, 8, 24),
                &[i],
            )
            .unwrap();
        let cat = b
            .add("cat", LayerKind::Concat, FmapShape::new(8, 8, 32), &[a, c])
            .unwrap();
        let d = b.build();
        use crate::region::{Range1, Region};
        let out = Region::new(
            Range1::full(8),
            Range1::full(8),
            Range1::new(8, 32),
            Range1::full(1),
        );
        // Channels [8,32) of the concat come entirely from pred 1.
        assert!(d.input_need(cat, 0, &out).is_empty());
        assert_eq!(d.input_need(cat, 1, &out).k, Range1::new(0, 24));
    }

    #[test]
    fn concat_channel_sum_checked() {
        let mut b = DnnBuilder::new("cat");
        let i = b.input(FmapShape::new(8, 8, 4));
        let a = b
            .add(
                "a",
                LayerKind::Conv(ConvParams::dense((1, 1), (1, 1), (0, 0), 4)),
                FmapShape::new(8, 8, 8),
                &[i],
            )
            .unwrap();
        let r = b.add("cat", LayerKind::Concat, FmapShape::new(8, 8, 32), &[a, a]);
        assert!(matches!(r, Err(GraphError::ShapeMismatch { .. })));
    }

    #[test]
    fn matmul_operand_shapes_checked() {
        let mut b = DnnBuilder::new("mm");
        let i = b.input(FmapShape::new(16, 1, 32));
        let q = b
            .add(
                "q",
                LayerKind::Conv(ConvParams::dense((1, 1), (1, 1), (0, 0), 32)),
                FmapShape::new(16, 1, 32),
                &[i],
            )
            .unwrap();
        let k = b
            .add(
                "k",
                LayerKind::Conv(ConvParams::dense((1, 1), (1, 1), (0, 0), 32)),
                FmapShape::new(16, 1, 32),
                &[i],
            )
            .unwrap();
        // Correct Q.K^T: out (16 x 16), k_dim 32.
        let qkt = b.add(
            "qkt",
            LayerKind::Matmul {
                k_dim: 32,
                operand: MatmulOperand::ActRowSlice,
            },
            FmapShape::new(16, 1, 16),
            &[q, k],
        );
        assert!(qkt.is_ok());
        // Wrong out rows.
        let bad = b.add(
            "bad",
            LayerKind::Matmul {
                k_dim: 32,
                operand: MatmulOperand::ActRowSlice,
            },
            FmapShape::new(8, 1, 16),
            &[q, k],
        );
        assert!(matches!(bad, Err(GraphError::ShapeMismatch { .. })));
    }

    #[test]
    fn depth_within_subsets() {
        let d = chain();
        // Layers 1..=3 form a 3-deep chain.
        assert_eq!(d.depth_within(&[LayerId(1), LayerId(2), LayerId(3)]), 3);
        assert_eq!(d.depth_within(&[LayerId(1)]), 1);
        // Disconnected members have depth 1 each.
        assert_eq!(d.depth_within(&[LayerId(1), LayerId(3)]), 1);
    }

    #[test]
    fn total_macs_positive() {
        let d = chain();
        assert!(d.total_macs(1) > 0);
        assert_eq!(d.total_macs(4), 4 * d.total_macs(1));
        assert!(d.total_weight_bytes() > 0);
    }

    #[test]
    fn summary_census_consistent() {
        let d = chain();
        let s = d.summary();
        assert_eq!(s.layers, d.compute_ids().count());
        assert_eq!(s.layers, s.convs + s.matmuls + s.vector_layers);
        assert!((s.gmacs_per_sample - d.total_macs(1) as f64 / 1e9).abs() < 1e-12);
        assert!(s.depth >= 1);
        let line = s.to_string();
        assert!(line.contains("GMACs") && line.contains(d.name()));
    }
}
