//! Four-dimensional tensor regions.
//!
//! A [`Region`] is a half-open box over the four dimensions of a layer's
//! output cube used by the Gemini encoding (Sec. IV-A of the paper):
//! ofmap height `H`, ofmap width `W`, ofmap channel `K` and batch `B`.
//! Regions are the currency of the whole evaluator: partitioned workloads,
//! halo-inferred input requirements and producer/consumer flow volumes are
//! all expressed as regions and region intersections.

use serde::{Deserialize, Serialize};

/// Shape of one feature map sample: height x width x channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FmapShape {
    /// Feature-map height.
    pub h: u32,
    /// Feature-map width.
    pub w: u32,
    /// Channel count.
    pub c: u32,
}

impl FmapShape {
    /// Creates a new shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(h: u32, w: u32, c: u32) -> Self {
        assert!(h > 0 && w > 0 && c > 0, "fmap dimensions must be nonzero");
        Self { h, w, c }
    }

    /// Elements in one sample of this shape.
    pub fn elems(&self) -> u64 {
        self.h as u64 * self.w as u64 * self.c as u64
    }

    /// Bytes of one sample (int8).
    pub fn bytes(&self) -> u64 {
        self.elems() * crate::BYTES_PER_ELEM
    }
}

impl std::fmt::Display for FmapShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.h, self.w, self.c)
    }
}

/// A half-open interval `[start, end)` over one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Range1 {
    /// Inclusive start.
    pub start: u32,
    /// Exclusive end.
    pub end: u32,
}

impl Range1 {
    /// Creates a range; `start > end` is clamped to an empty range.
    pub fn new(start: u32, end: u32) -> Self {
        if start >= end {
            Self { start, end: start }
        } else {
            Self { start, end }
        }
    }

    /// The full range `[0, len)`.
    pub fn full(len: u32) -> Self {
        Self { start: 0, end: len }
    }

    /// Number of indices covered.
    pub fn len(&self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the range covers nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intersection of two ranges (possibly empty).
    pub fn intersect(&self, other: &Range1) -> Range1 {
        Range1::new(self.start.max(other.start), self.end.min(other.end))
    }

    /// Range shifted by a signed offset, clamped at zero.
    pub fn shift(&self, by: i64) -> Range1 {
        let s = (self.start as i64 + by).max(0) as u32;
        let e = (self.end as i64 + by).max(0) as u32;
        Range1::new(s, e)
    }
}

/// A 4-D half-open box over (H, W, K, B) of a layer's output cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Region {
    /// Height range.
    pub h: Range1,
    /// Width range.
    pub w: Range1,
    /// Channel (ofmap channel / weight kernel) range.
    pub k: Range1,
    /// Batch range (within one pipeline-stage batch unit).
    pub b: Range1,
}

impl Region {
    /// Creates a region from four ranges.
    pub fn new(h: Range1, w: Range1, k: Range1, b: Range1) -> Self {
        Self { h, w, k, b }
    }

    /// The full region for `batch` samples of `shape`.
    pub fn full(shape: FmapShape, batch: u32) -> Self {
        Self {
            h: Range1::full(shape.h),
            w: Range1::full(shape.w),
            k: Range1::full(shape.c),
            b: Range1::full(batch),
        }
    }

    /// Number of elements covered.
    pub fn elems(&self) -> u64 {
        self.h.len() as u64 * self.w.len() as u64 * self.k.len() as u64 * self.b.len() as u64
    }

    /// Bytes covered (int8).
    pub fn bytes(&self) -> u64 {
        self.elems() * crate::BYTES_PER_ELEM
    }

    /// Whether the region covers nothing.
    pub fn is_empty(&self) -> bool {
        self.elems() == 0
    }

    /// Box intersection.
    pub fn intersect(&self, other: &Region) -> Region {
        Region {
            h: self.h.intersect(&other.h),
            w: self.w.intersect(&other.w),
            k: self.k.intersect(&other.k),
            b: self.b.intersect(&other.b),
        }
    }

    /// Volume (in bytes) of the intersection with `other`.
    pub fn overlap_bytes(&self, other: &Region) -> u64 {
        self.intersect(other).bytes()
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[h {}..{}, w {}..{}, k {}..{}, b {}..{}]",
            self.h.start,
            self.h.end,
            self.w.start,
            self.w.end,
            self.k.start,
            self.k.end,
            self.b.start,
            self.b.end
        )
    }
}

/// Splits a dimension of size `len` into `parts` approximately equal
/// pieces and returns piece `idx` as a half-open range.
///
/// The split follows the "approximately equal parts" rule of the paper's
/// `Part` attribute: piece `idx` is `[floor(idx*len/parts),
/// floor((idx+1)*len/parts))`. Pieces differ in size by at most one and
/// cover `[0, len)` exactly.
///
/// # Panics
///
/// Panics if `parts == 0` or `idx >= parts`.
pub fn split_dim(len: u32, parts: u32, idx: u32) -> Range1 {
    assert!(parts > 0, "parts must be nonzero");
    assert!(idx < parts, "idx {idx} out of range for {parts} parts");
    let len = len as u64;
    let parts64 = parts as u64;
    let start = (idx as u64 * len / parts64) as u32;
    let end = ((idx as u64 + 1) * len / parts64) as u32;
    Range1::new(start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = Range1::new(2, 7);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        let e = Range1::new(5, 5);
        assert!(e.is_empty());
    }

    #[test]
    fn range_degenerate_clamped() {
        let r = Range1::new(7, 2);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn range_intersection() {
        let a = Range1::new(0, 10);
        let b = Range1::new(5, 15);
        assert_eq!(a.intersect(&b), Range1::new(5, 10));
        let c = Range1::new(12, 20);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn range_shift_clamps_at_zero() {
        let r = Range1::new(1, 4);
        assert_eq!(r.shift(-3), Range1::new(0, 1));
        assert_eq!(r.shift(2), Range1::new(3, 6));
    }

    #[test]
    fn region_volume() {
        let r = Region::new(
            Range1::new(0, 4),
            Range1::new(0, 4),
            Range1::new(0, 8),
            Range1::new(0, 2),
        );
        assert_eq!(r.elems(), 4 * 4 * 8 * 2);
        assert_eq!(r.bytes(), 4 * 4 * 8 * 2);
    }

    #[test]
    fn region_intersect_disjoint() {
        let shape = FmapShape::new(8, 8, 16);
        let a = Region::full(shape, 1);
        let mut b = a;
        b.h = Range1::new(8, 8);
        assert!(a.intersect(&b).is_empty());
        assert_eq!(a.overlap_bytes(&b), 0);
    }

    #[test]
    fn split_dim_covers_exactly() {
        for len in [1u32, 3, 7, 8, 56, 224] {
            for parts in 1..=len.min(9) {
                let mut total = 0;
                let mut prev_end = 0;
                for idx in 0..parts {
                    let r = split_dim(len, parts, idx);
                    assert_eq!(r.start, prev_end, "pieces must be contiguous");
                    prev_end = r.end;
                    total += r.len();
                }
                assert_eq!(prev_end, len);
                assert_eq!(total, len);
            }
        }
    }

    #[test]
    fn split_dim_near_equal() {
        let len = 10;
        let parts = 3;
        let sizes: Vec<u32> = (0..parts).map(|i| split_dim(len, parts, i).len()).collect();
        let mx = *sizes.iter().max().unwrap();
        let mn = *sizes.iter().min().unwrap();
        assert!(mx - mn <= 1, "sizes {sizes:?} differ by more than one");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_dim_bad_idx_panics() {
        let _ = split_dim(8, 2, 2);
    }

    #[test]
    fn fmap_shape_display_and_bytes() {
        let s = FmapShape::new(56, 56, 256);
        assert_eq!(s.to_string(), "56x56x256");
        assert_eq!(s.bytes(), 56 * 56 * 256);
    }
}
