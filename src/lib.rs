//! # Gemini: mapping and architecture co-exploration for large-scale DNN
//! chiplet accelerators
//!
//! A from-scratch Rust reproduction of the HPCA 2024 paper
//! *"Gemini: Mapping and Architecture Co-exploration for Large-scale DNN
//! Chiplet Accelerators"* (Cai et al.). This facade crate re-exports the
//! whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `gemini-model` | layer IR, DNN DAGs, model zoo |
//! | [`arch`] | `gemini-arch` | chiplet hardware template + area model |
//! | [`noc`] | `gemini-noc` | mesh/torus routing, traffic maps, heatmaps |
//! | [`intracore`] | `gemini-intracore` | NVDLA-style tiling/loop-order search |
//! | [`sim`] | `gemini-sim` | performance & energy evaluator |
//! | [`cost`] | `gemini-cost` | monetary-cost evaluator |
//! | [`tangram`] | `gemini-tangram` | Tangram baseline (T-Map) |
//! | [`core`] | `gemini-core` | LP-SPM encoding, SA engine, DSE, service layer |
//!
//! # Quickstart
//!
//! ```
//! use gemini::prelude::*;
//!
//! // Workload and architecture.
//! let dnn = gemini::model::zoo::tiny_resnet();
//! let arch = gemini::arch::presets::g_arch_72();
//!
//! // Map with Gemini's SA engine and evaluate. Per-group annealing
//! // chains run in parallel (`threads: 0` = all cores; results are
//! // bit-identical at any thread count) with memoized candidate
//! // evaluation. `SaOptions::from_env()` additionally honours the
//! // `GEMINI_SA_ITERS` / `GEMINI_SA_SEED` / `GEMINI_SA_THREADS`
//! // environment variables.
//! let ev = Evaluator::new(&arch);
//! let engine = MappingEngine::new(&ev);
//! let opts = MappingOptions {
//!     sa: SaOptions { iters: 50, threads: 0, ..Default::default() },
//!     ..Default::default()
//! };
//! let mapped = engine.map(&dnn, 4, &opts);
//! println!("delay {:.3} ms, energy {:.3} mJ",
//!     mapped.report.delay_s * 1e3, mapped.report.energy.total() * 1e3);
//!
//! // Monetary cost of the architecture.
//! let mc = CostModel::default().evaluate(&arch);
//! assert!(mc.total() > 0.0);
//! ```

pub use gemini_arch as arch;
pub use gemini_core as core;
pub use gemini_cost as cost;
pub use gemini_intracore as intracore;
pub use gemini_model as model;
pub use gemini_noc as noc;
pub use gemini_sim as sim;
pub use gemini_tangram as tangram;

/// The most common imports in one place.
///
/// Everything needed for the map → evaluate → compare loop:
///
/// ```
/// use gemini::prelude::*;
///
/// // Tangram's T-Map baseline vs. Gemini's SA-refined G-Map on the
/// // same workload, architecture and evaluator (Sec. VI setup).
/// let dnn = gemini::model::zoo::two_conv_example();
/// let arch = gemini::arch::presets::g_arch_72();
/// let ev = Evaluator::new(&arch);
///
/// let t_map: MappedDnn = TangramMapper::new(&ev).map(&dnn, 2);
/// let sa = SaOptions { iters: 40, ..Default::default() };
/// let cmp = compare_mappings(&ev, &dnn, 2, &sa);
///
/// // The annealer starts from the stripe baseline, so it can only
/// // improve on it — and the evaluator agrees with the T-Map run.
/// assert!(cmp.speedup() >= 1.0 - 1e-9);
/// assert!((cmp.tangram.delay_s - t_map.report.delay_s).abs() < 1e-12);
/// ```
pub mod prelude {
    pub use gemini_arch::{ArchConfig, CoreClass, HeteroSpec, Topology};
    pub use gemini_core::campaign::{
        merge_shards, run_campaign, run_campaign_file, run_campaign_shard, shard_of,
        CampaignOptions, CampaignResult, CampaignSpec, ShardRunResult, ShardSpec,
    };
    pub use gemini_core::dse::{run_dse, DseOptions, DseSpec, Objective, RecordBound};
    pub use gemini_core::engine::{MappedDnn, MappingEngine, MappingOptions};
    pub use gemini_core::fidelity::{
        parse_policy, BoundMode, BoundStats, DseReport, FidelityPolicy, FluidConfig,
    };
    pub use gemini_core::objective::{ObjectiveParseError, ObjectiveSpec};
    pub use gemini_core::sa::{SaOptions, SaOutcome, SaStats};
    pub use gemini_core::service::{
        CampaignParams, DseParams, ErrorCode, MapParams, Request, RequestBody, Response,
        ServeOptions, Server, ServiceError, ServiceState,
    };
    pub use gemini_core::traffic::{
        decode_latency_curve, serve_at, ArrivalSpec, BatcherConfig, LatencyCurve, ServedStats,
    };
    pub use gemini_cost::CostModel;
    pub use gemini_model::{Dnn, DnnBuilder, FmapShape, LayerKind};
    pub use gemini_sim::bound::{dnn_bound, group_bound, DnnBound, GroupBound};
    pub use gemini_sim::{EvalCache, Evaluator};
    pub use gemini_tangram::{compare_mappings, TangramMapper};
}
