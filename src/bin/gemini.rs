//! `gemini` — command-line front end for the co-exploration framework.
//!
//! Subcommands:
//!
//! * `gemini cost <preset>` — monetary-cost report of an architecture;
//! * `gemini map <model> [--arch <preset>] [--batch N] [--iters N]
//!   [--threads N] [--stats]` — map a workload with T-Map and G-Map and
//!   print the comparison (`--stats` adds per-group utilization and the
//!   packet-level fidelity ladder);
//! * `gemini dse [--tops T] [--stride N] [--batch N] [--iters N]
//!   [--fidelity analytic|rerank|validate[+bounds|+prune]] [--rerank-k K]
//!   [--objective SPEC]` — run the Table-I DSE and print the best
//!   architecture under `SPEC` (`mc-e-d` default, `e-d`, `d`, `e`, or
//!   the serving objectives `p99@<rate>` / `goodput@<rate>:<budget>ms`,
//!   which replay the canonical traffic scenario against each
//!   candidate's mapped step latency); `--fidelity
//!   rerank` re-scores the top-K analytic survivors with the max-min
//!   fluid NoC simulator (congestion-aware re-rank), `--fidelity
//!   validate` additionally replays the winner through the flit-granular
//!   packet simulator and prints the calibrated congestion-surcharge
//!   weight; a `+bounds` suffix reports rung-0 analytic lower-bound
//!   counters, `+prune` additionally skips SA for candidates whose
//!   bound already loses to an evaluated seed (never changes the
//!   winner);
//! * `gemini hetero <model> [--batch N] [--iters N]` — exhaustive
//!   per-chiplet class-assignment DSE on a 4-chiplet fabric (Sec. V-D);
//! * `gemini campaign <manifest> [--resume] [--threads N]` — run a
//!   manifest-driven experiment campaign (TOML/JSON, see
//!   docs/CAMPAIGNS.md): the cell cross-product fans out over the
//!   worker pool, completed cells land in a resumable journal, and the
//!   multi-objective Pareto archive is written as CSV + JSON artifacts.
//!   `--resume` skips journaled cells bit-identically; artifacts are
//!   byte-identical at any `--threads` count. With
//!   `--shards N --shard-index K` the process evaluates only shard
//!   `K`'s cells into `journal-shard-K.jsonl` (no artifacts; add
//!   `--steal` to also claim cells no sibling journal has recorded);
//!   `gemini campaign merge <manifest>` then validates the shard
//!   journals and writes artifacts byte-identical to an unsharded run;
//! * `gemini serve --addr HOST:PORT [--workers N] [--queue N]
//!   [--cache-cap N]` — run the same engine as a persistent daemon:
//!   line-delimited JSON requests over TCP, warm caches shared across
//!   requests, a bounded priority queue with explicit `busy`
//!   backpressure, and graceful drain on a `shutdown` request or
//!   SIGTERM (protocol reference: docs/SERVE.md);
//! * `gemini request --addr HOST:PORT` — pipe request lines from stdin
//!   to a running daemon and print the response lines;
//! * `gemini models` / `gemini archs` — list available workloads and
//!   architecture presets.
//!
//! The `map`, `dse` and `campaign` verbs are thin clients of the same
//! service layer the daemon runs ([`gemini::core::service`]): they
//! build the typed request, call the handler in-process and print its
//! rendered report, so a CLI run and the equivalent socket request are
//! byte-identical.
//!
//! SA knobs default from the environment (`GEMINI_SA_ITERS`,
//! `GEMINI_SA_SEED`, `GEMINI_SA_THREADS`); `--iters`/`--threads` win
//! over the environment. `--threads 0` (the default) uses every core —
//! mapping results are bit-identical at any thread count. For `dse`,
//! `--threads` sets the candidate-sweep worker count instead (SA
//! chains revert to auto and are pinned to one while the sweep is
//! parallel, so the machine is never oversubscribed).
//!
//! Models are the paper's abbreviations (`rn-50`, `rnx`, `ires`, `pnas`,
//! `tf`, `tf-large`, `gn`); presets are `s-arch`, `g-arch`, `t-arch`,
//! `g-arch-torus`.

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;

use gemini::core::service::preset;
use gemini::prelude::*;

/// Minimal `--flag value` argument scanner.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Every verb the CLI understands, for the unknown-subcommand message.
const VERBS: &str = "models|archs|cost|map|dse|hetero|heatmap|campaign|serve|request";

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  gemini models [--detail]\n  gemini archs\n  gemini cost <preset>\n  \
         gemini map <model> [--arch <preset>] [--batch N] [--iters N] [--threads N] [--stats]\n  \
         gemini dse [--tops T] [--stride N] [--batch N] [--iters N] [--threads N] \
[--fidelity analytic|rerank|validate[+bounds|+prune]] [--rerank-k K] [--objective SPEC]\n  \
         gemini hetero <model> [--batch N] [--iters N]\n  \
         gemini heatmap <model> [--batch N] [--iters N]\n  \
         gemini campaign <manifest.toml|.json> [--resume] [--threads N] [--out DIR] \
[--shards N --shard-index K [--steal]]\n  \
         gemini campaign merge <manifest.toml|.json> [--out DIR]\n  \
         gemini serve --addr HOST:PORT [--workers N] [--queue N] [--cache-cap N]\n  \
         gemini request --addr HOST:PORT"
    );
    ExitCode::FAILURE
}

/// SA options from the environment, with CLI `--iters`/`--threads`
/// overrides applied on top. Precedence for the budget: `--iters`,
/// then a *parsable* `GEMINI_SA_ITERS`, then the per-command default
/// (an unparsable env value warns via `from_env` and is treated as
/// unset, not as the struct default).
fn sa_opts(args: &[String], default_iters: u32) -> SaOptions {
    let mut sa = SaOptions::from_env();
    let env_iters = std::env::var("GEMINI_SA_ITERS")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok());
    sa.iters = flag(args, "--iters")
        .and_then(|v| v.parse().ok())
        .or(env_iters)
        .unwrap_or(default_iters);
    if let Some(t) = flag(args, "--threads").and_then(|v| v.parse().ok()) {
        sa.threads = t;
    }
    sa
}

/// Runs one request body through a one-shot service state and prints
/// the rendered report — the same code path `gemini serve` answers
/// socket requests with, so the two are byte-identical.
fn run_one_shot(body: RequestBody) -> ExitCode {
    let state = ServiceState::one_shot();
    match state.handle(&body) {
        Ok(payload) => {
            let report = payload
                .get("report")
                .and_then(|r| r.as_str())
                .expect("every one-shot payload carries a report");
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("models") => {
            let names = [
                ("rn-50", "ResNet-50 (224x224)"),
                ("rnx", "ResNeXt-50 32x4d"),
                ("ires", "Inception-ResNet-v1 (299x299)"),
                ("pnas", "PNASNet (224x224)"),
                ("tf", "Transformer base (128 tokens, d512)"),
                ("tf-large", "Transformer large (128 tokens, d1024)"),
                ("bert", "BERT-base encoder (12 layers, d768)"),
                ("gn", "GoogLeNet"),
                ("dn-121", "DenseNet-121"),
                ("mbv2", "MobileNetV2"),
                ("effnet", "EfficientNet-B0 (SE omitted)"),
                ("vgg", "VGG-16"),
                (
                    "gpt2-decode",
                    "GPT-2 decode step (12 blocks, d768; @pos, default 512)",
                ),
                (
                    "decode-tiny",
                    "Two-block decode step (d128; @pos, default 64)",
                ),
            ];
            let detail = args.iter().any(|a| a == "--detail");
            for (abbr, desc) in names {
                if detail {
                    let dnn = gemini::model::zoo::by_name(abbr)
                        .expect("listed model exists")
                        .graph;
                    println!("{abbr:<9} {}", dnn.summary());
                } else {
                    println!("{abbr:<9} {desc}");
                }
            }
            ExitCode::SUCCESS
        }
        Some("heatmap") => {
            let Some(dnn) = args
                .get(1)
                .and_then(|m| gemini::model::zoo::by_name(m))
                .map(|w| w.graph)
            else {
                eprintln!("unknown model; try `gemini models`");
                return ExitCode::FAILURE;
            };
            let batch: u32 = flag(&args, "--batch")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8);
            let sa = sa_opts(&args, 800);
            let iters = sa.iters;
            let arch = gemini::arch::presets::g_arch_72();
            let ev = Evaluator::new(&arch);
            let engine = MappingEngine::new(&ev);
            let busiest = |m: &gemini::core::engine::MappedDnn| {
                let r = m
                    .report
                    .groups
                    .iter()
                    .max_by(|a, b| {
                        a.traffic
                            .total_hop_bytes()
                            .partial_cmp(&b.traffic.total_hop_bytes())
                            .expect("finite")
                    })
                    .expect("at least one group");
                gemini::noc::Heatmap::build(ev.network(), &r.traffic)
            };
            let t = engine.map_stripe(&dnn, batch, &MappingOptions::default());
            let g = engine.map(
                &dnn,
                batch,
                &MappingOptions {
                    sa,
                    ..Default::default()
                },
            );
            println!(
                "busiest-group link pressure on {} (0-9):",
                arch.paper_tuple()
            );
            println!("\nT-Map:\n{}", busiest(&t).render_ascii());
            println!("G-Map (SA {iters}):\n{}", busiest(&g).render_ascii());
            ExitCode::SUCCESS
        }
        Some("archs") => {
            for (n, a) in [
                ("s-arch", gemini::arch::presets::simba_s_arch()),
                ("g-arch", gemini::arch::presets::g_arch_72()),
                ("t-arch", gemini::arch::presets::t_arch()),
                ("g-arch-torus", gemini::arch::presets::g_arch_vs_tarch()),
            ] {
                println!("{n:<14} {}  [{:.0} TOPS]", a.paper_tuple(), a.tops());
            }
            ExitCode::SUCCESS
        }
        Some("cost") => {
            let Some(arch) = args.get(1).and_then(|n| preset(n)) else {
                eprintln!("unknown preset; try `gemini archs`");
                return ExitCode::FAILURE;
            };
            let mc = CostModel::default().evaluate(&arch);
            println!("architecture : {}", arch.paper_tuple());
            println!(
                "silicon      : ${:8.2}  ({:.1} mm2 total)",
                mc.silicon, mc.silicon_mm2
            );
            for d in &mc.per_die {
                println!(
                    "  {:?} die    : {:6.1} mm2 x{}  yield {:.3}  ${:.2} each",
                    d.kind, d.area_mm2, d.count, d.yield_, d.unit_cost
                );
            }
            println!("DRAM         : ${:8.2}", mc.dram);
            println!(
                "packaging    : ${:8.2}  ({:.0} mm2 substrate)",
                mc.package, mc.substrate_mm2
            );
            println!("total        : ${:8.2}", mc.total());
            ExitCode::SUCCESS
        }
        Some("map") => {
            let Some(model) = args.get(1).cloned() else {
                eprintln!("unknown model; try `gemini models`");
                return ExitCode::FAILURE;
            };
            let Some(dnn) = gemini::model::zoo::by_name(&model).map(|w| w.graph) else {
                eprintln!("unknown model; try `gemini models`");
                return ExitCode::FAILURE;
            };
            let arch_name = flag(&args, "--arch").unwrap_or_else(|| "g-arch".to_string());
            let Some(arch) = preset(&arch_name) else {
                eprintln!("unknown preset; try `gemini archs`");
                return ExitCode::FAILURE;
            };
            let batch: u32 = flag(&args, "--batch")
                .and_then(|v| v.parse().ok())
                .unwrap_or(16);
            let sa = sa_opts(&args, 1000);
            // The header is printed client-side: chain_threads() is
            // host-dependent, so it stays out of the deterministic
            // payload the daemon serves.
            println!(
                "mapping {} onto {} (batch {batch}, SA {} x {} threads)",
                dnn.name(),
                arch.paper_tuple(),
                sa.iters,
                sa.chain_threads()
            );
            run_one_shot(RequestBody::Map(MapParams {
                model,
                arch: arch_name,
                batch,
                iters: sa.iters,
                seed: sa.seed,
                threads: sa.threads,
                stats: args.iter().any(|a| a == "--stats"),
            }))
        }
        Some("hetero") => {
            let Some(dnn) = args
                .get(1)
                .and_then(|m| gemini::model::zoo::by_name(m))
                .map(|w| w.graph)
            else {
                eprintln!("unknown model; try `gemini models`");
                return ExitCode::FAILURE;
            };
            let batch: u32 = flag(&args, "--batch")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8);
            let sa = sa_opts(&args, 300);
            let iters = sa.iters;
            let fabric = ArchConfig::builder()
                .cores(6, 6)
                .cuts(2, 2)
                .noc_bw(32.0)
                .d2d_bw(16.0)
                .dram_bw(144.0)
                .build()
                .expect("valid fabric");
            let spec = gemini::core::hetero_dse::HeteroDseSpec {
                fabric,
                classes: vec![
                    gemini::arch::CoreClass {
                        macs: 1536,
                        glb_bytes: 3 << 20,
                    },
                    gemini::arch::CoreClass {
                        macs: 512,
                        glb_bytes: 1 << 20,
                    },
                ],
            };
            let opts = DseOptions {
                batch,
                mapping: MappingOptions {
                    sa,
                    ..Default::default()
                },
                ..Default::default()
            };
            println!(
                "exploring {} class assignments for {} (batch {batch}, SA {iters})",
                spec.candidates().len(),
                dnn.name()
            );
            let res =
                gemini::core::hetero_dse::run_hetero_dse(std::slice::from_ref(&dnn), &spec, &opts);
            let best = res.best_record();
            let tag: String = best
                .spec
                .class_of_chiplet()
                .iter()
                .map(|&c| if c == 0 { 'B' } else { 'L' })
                .collect();
            println!(
                "best assignment {tag} (B = 1536-MAC, L = 512-MAC): {:.1} TOPS  MC ${:.2}  \
                 E {:.3e} J  D {:.3e} s",
                best.tops, best.mc, best.energy, best.delay
            );
            ExitCode::SUCCESS
        }
        Some("campaign") => {
            let merge = args.get(1).map(String::as_str) == Some("merge");
            let manifest_pos = if merge { 2 } else { 1 };
            let Some(manifest) = args.get(manifest_pos).filter(|a| !a.starts_with("--")) else {
                eprintln!(
                    "usage: gemini campaign <manifest.toml|.json> [--resume] [--threads N] \
                     [--out DIR] [--shards N --shard-index K [--steal]]\n       \
                     gemini campaign merge <manifest.toml|.json> [--out DIR]"
                );
                return ExitCode::FAILURE;
            };
            let resume = args.iter().any(|a| a == "--resume");
            let params = CampaignParams {
                manifest: manifest.clone(),
                resume,
                threads: flag(&args, "--threads")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                out: flag(&args, "--out"),
                merge,
                shards: flag(&args, "--shards").and_then(|v| v.parse().ok()),
                shard_index: flag(&args, "--shard-index").and_then(|v| v.parse().ok()),
                steal: args.iter().any(|a| a == "--steal"),
            };
            // Load and validate client-side first so the pre-run header
            // (the only host/progress line) never prints on a refused
            // request; the handler re-validates identically for socket
            // clients.
            let spec = match CampaignSpec::load(std::path::Path::new(manifest)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = gemini::core::service::campaign_shard(&params) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            let sets = spec.workload_sets();
            let archs = spec.arch_candidates();
            println!(
                "campaign '{}' [{}]: {} workload set(s) x {} batch(es) x {} arch(s) = {} cells{}",
                spec.name,
                spec.fingerprint(),
                sets.len(),
                spec.batches.len(),
                archs.len(),
                sets.len() * spec.batches.len() * archs.len(),
                if resume { " (resuming)" } else { "" }
            );
            run_one_shot(RequestBody::Campaign(params))
        }
        Some("dse") => {
            let rerank_k: usize = flag(&args, "--rerank-k")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8);
            let mut sa = sa_opts(&args, 300);
            // For the DSE, `--threads` sets the candidate-sweep workers,
            // not the SA chain count (which `sa_opts` would otherwise
            // also take from the flag, multiplying into workers x chains
            // threads): chains revert to auto and `run_dse_over` pins
            // them to 1 while the sweep is parallel. Results are
            // identical either way.
            let cli_threads: Option<usize> = flag(&args, "--threads").and_then(|v| v.parse().ok());
            if cli_threads.is_some() {
                sa.threads = 0;
            }
            run_one_shot(RequestBody::Dse(DseParams {
                tops: flag(&args, "--tops")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(72.0),
                stride: flag(&args, "--stride")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(29),
                batch: flag(&args, "--batch")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(64),
                iters: sa.iters,
                seed: sa.seed,
                fidelity: flag(&args, "--fidelity").unwrap_or_else(|| "analytic".to_string()),
                rerank_k,
                threads: cli_threads,
                sa_threads: sa.threads,
                objective: flag(&args, "--objective").unwrap_or_else(|| "mc-e-d".to_string()),
            }))
        }
        Some("serve") => {
            let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4816".to_string());
            let opts = ServeOptions {
                workers: flag(&args, "--workers")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                queue_cap: flag(&args, "--queue")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(64),
                eval_cache_cap: flag(&args, "--cache-cap")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(gemini::core::service::SERVE_EVAL_CACHE_CAP),
            };
            let cache_cap = opts.eval_cache_cap;
            let server = match Server::bind(&addr, opts) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match server.local_addr() {
                Ok(local) => {
                    // One parseable line so scripts (and the CI job) can
                    // scrape the resolved port when binding :0.
                    println!("listening on {local}");
                    let _ = std::io::stdout().flush();
                }
                Err(e) => {
                    eprintln!("bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            let state = ServiceState::serving(cache_cap);
            match server.run(&state) {
                Ok(s) => {
                    println!(
                        "drained: served {} request(s) over {} connection(s)",
                        s.served, s.connections
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("request") => {
            let Some(addr) = flag(&args, "--addr") else {
                eprintln!("gemini request requires --addr HOST:PORT");
                return ExitCode::FAILURE;
            };
            let mut conn = match std::net::TcpStream::connect(&addr) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("connect {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Pipeline: send every stdin line, half-close, then print
            // the responses (completion order; correlate by id).
            let mut sent = 0usize;
            for line in std::io::stdin().lock().lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("stdin: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if line.trim().is_empty() {
                    continue;
                }
                if conn
                    .write_all(line.as_bytes())
                    .and_then(|()| conn.write_all(b"\n"))
                    .is_err()
                {
                    eprintln!("connection to {addr} closed while sending");
                    return ExitCode::FAILURE;
                }
                sent += 1;
            }
            let _ = conn.flush();
            let _ = conn.shutdown(std::net::Shutdown::Write);
            let mut got = 0usize;
            for resp in BufReader::new(conn).lines() {
                match resp {
                    Ok(l) => {
                        println!("{l}");
                        got += 1;
                    }
                    Err(e) => {
                        eprintln!("read {addr}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                if got == sent {
                    break;
                }
            }
            if got < sent {
                eprintln!("{addr} answered {got} of {sent} request(s) before closing");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand '{other}'; expected {VERBS}");
            usage()
        }
        None => usage(),
    }
}
