//! `gemini` — command-line front end for the co-exploration framework.
//!
//! Subcommands:
//!
//! * `gemini cost <preset>` — monetary-cost report of an architecture;
//! * `gemini map <model> [--arch <preset>] [--batch N] [--iters N]
//!   [--threads N] [--stats]` — map a workload with T-Map and G-Map and
//!   print the comparison (`--stats` adds per-group utilization and the
//!   packet-level fidelity ladder);
//! * `gemini dse [--tops T] [--stride N] [--batch N] [--iters N]
//!   [--fidelity analytic|rerank|validate] [--rerank-k K]` — run the
//!   Table-I DSE and print the best architecture; `--fidelity rerank`
//!   re-scores the top-K analytic survivors with the max-min fluid NoC
//!   simulator (congestion-aware re-rank), `--fidelity validate`
//!   additionally replays the winner through the flit-granular packet
//!   simulator and prints the calibrated congestion-surcharge weight;
//! * `gemini hetero <model> [--batch N] [--iters N]` — exhaustive
//!   per-chiplet class-assignment DSE on a 4-chiplet fabric (Sec. V-D);
//! * `gemini campaign <manifest> [--resume] [--threads N]` — run a
//!   manifest-driven experiment campaign (TOML/JSON, see
//!   docs/CAMPAIGNS.md): the cell cross-product fans out over the
//!   worker pool, completed cells land in a resumable journal, and the
//!   multi-objective Pareto archive is written as CSV + JSON artifacts.
//!   `--resume` skips journaled cells bit-identically; artifacts are
//!   byte-identical at any `--threads` count. With
//!   `--shards N --shard-index K` the process evaluates only shard
//!   `K`'s cells into `journal-shard-K.jsonl` (no artifacts; add
//!   `--steal` to also claim cells no sibling journal has recorded);
//!   `gemini campaign merge <manifest>` then validates the shard
//!   journals and writes artifacts byte-identical to an unsharded run;
//! * `gemini models` / `gemini archs` — list available workloads and
//!   architecture presets.
//!
//! SA knobs default from the environment (`GEMINI_SA_ITERS`,
//! `GEMINI_SA_SEED`, `GEMINI_SA_THREADS`); `--iters`/`--threads` win
//! over the environment. `--threads 0` (the default) uses every core —
//! mapping results are bit-identical at any thread count. For `dse`,
//! `--threads` sets the candidate-sweep worker count instead (SA
//! chains revert to auto and are pinned to one while the sweep is
//! parallel, so the machine is never oversubscribed).
//!
//! Models are the paper's abbreviations (`rn-50`, `rnx`, `ires`, `pnas`,
//! `tf`, `tf-large`, `gn`); presets are `s-arch`, `g-arch`, `t-arch`,
//! `g-arch-torus`.

use std::process::ExitCode;

use gemini::prelude::*;

fn preset(name: &str) -> Option<ArchConfig> {
    match name {
        "s-arch" | "simba" => Some(gemini::arch::presets::simba_s_arch()),
        "g-arch" => Some(gemini::arch::presets::g_arch_72()),
        "t-arch" => Some(gemini::arch::presets::t_arch()),
        "g-arch-torus" => Some(gemini::arch::presets::g_arch_vs_tarch()),
        _ => None,
    }
}

/// Minimal `--flag value` argument scanner.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  gemini models [--detail]\n  gemini archs\n  gemini cost <preset>\n  \
         gemini map <model> [--arch <preset>] [--batch N] [--iters N] [--threads N] [--stats]\n  \
         gemini dse [--tops T] [--stride N] [--batch N] [--iters N] [--threads N] \
[--fidelity analytic|rerank|validate] [--rerank-k K]\n  \
         gemini hetero <model> [--batch N] [--iters N]\n  \
         gemini heatmap <model> [--batch N] [--iters N]\n  \
         gemini campaign <manifest.toml|.json> [--resume] [--threads N] [--out DIR] \
[--shards N --shard-index K [--steal]]\n  \
         gemini campaign merge <manifest.toml|.json> [--out DIR]"
    );
    ExitCode::FAILURE
}

/// SA options from the environment, with CLI `--iters`/`--threads`
/// overrides applied on top. Precedence for the budget: `--iters`,
/// then a *parsable* `GEMINI_SA_ITERS`, then the per-command default
/// (an unparsable env value warns via `from_env` and is treated as
/// unset, not as the struct default).
fn sa_opts(args: &[String], default_iters: u32) -> SaOptions {
    let mut sa = SaOptions::from_env();
    let env_iters = std::env::var("GEMINI_SA_ITERS")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok());
    sa.iters = flag(args, "--iters")
        .and_then(|v| v.parse().ok())
        .or(env_iters)
        .unwrap_or(default_iters);
    if let Some(t) = flag(args, "--threads").and_then(|v| v.parse().ok()) {
        sa.threads = t;
    }
    sa
}

/// One-line summary of the SA engine's evaluation counters: memo-cache
/// hit rate, incremental (delta) vs. full evaluations, and the share of
/// per-layer stage records reused instead of re-simulated.
fn sa_counter_line(s: &gemini::core::sa::SaStats) -> String {
    let lookups = s.cache_hits + s.cache_misses;
    let cache_pct = if lookups == 0 {
        0.0
    } else {
        s.cache_hits as f64 / lookups as f64 * 100.0
    };
    let members = s.member_sims + s.member_reuses;
    let reuse_pct = if members == 0 {
        0.0
    } else {
        s.member_reuses as f64 / members as f64 * 100.0
    };
    format!(
        "SA evals: {} cache hits ({cache_pct:.1}%), {} delta, {} full; \
         layer records reused {reuse_pct:.1}% ({}/{})",
        s.cache_hits, s.delta_hits, s.full_evals, s.member_reuses, members
    )
}

/// Prints the fidelity-ladder section of a DSE result (nothing under
/// the analytic policy, which runs no ladder stages).
fn print_fidelity_report(res: &gemini::core::dse::DseResult) {
    let rep = &res.report;
    if rep.reranked.is_empty() {
        return;
    }
    println!(
        "\ncongestion-aware re-rank (fluid NoC reference, top {}):",
        rep.reranked.len()
    );
    for e in &rep.reranked {
        let r = &res.records[e.index];
        let marker = if e.index == rep.best {
            "  <== winner"
        } else if e.index == rep.analytic_best {
            "  (analytic winner)"
        } else {
            ""
        };
        println!(
            "  {}  analytic {:.4e} -> fluid {:.4e}{}",
            r.arch.paper_tuple(),
            e.analytic_score,
            e.fluid_score,
            marker,
        );
    }
    if rep.winner_changed() {
        println!("  the congestion-aware re-rank overturned the analytic winner");
    }
    if !rep.winner_groups.is_empty() {
        println!(
            "  worst fluid/analytic across the winner's {} groups: {:.2}x",
            rep.winner_groups.len(),
            rep.max_fluid_vs_analytic()
        );
        if rep.winner_groups.iter().any(|g| g.packet_s.is_some()) {
            let worst = rep
                .winner_groups
                .iter()
                .map(|g| g.reference_vs_analytic())
                .fold(1.0, f64::max);
            println!("  worst packet/analytic (winner validation): {worst:.2}x");
        }
    }
    if let Some(w) = rep.suggested_congestion_weight {
        println!(
            "  calibrated congestion weight: {w:.2} (default {:.2}; feed back via \
             EvalOptions::with_congestion_weight)",
            gemini::sim::evaluate::CONGESTION_WEIGHT
        );
    }
}

/// Prints a finished campaign's fronts, per-objective winners and
/// artifact paths — shared by the single-process run and the shard
/// merge, which produce the same [`CampaignResult`] shape.
fn print_campaign_result(spec: &CampaignSpec, res: &CampaignResult) {
    let archs = spec.arch_candidates();
    for (gi, g) in res.groups.iter().enumerate() {
        let front = res.archive.front(gi);
        println!(
            "\n[{}] batch {}: Pareto front ({}) has {} member(s)",
            g.wset,
            g.batch,
            res.archive
                .axes()
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join("/"),
            front.len()
        );
        for p in front {
            let c = &res.cells[p.cell];
            println!(
                "  cell {:>4}  {}  D {:.3e} s  E {:.3e} J  MC ${:.2}",
                p.cell,
                archs[c.arch_idx].paper_tuple(),
                c.eff_delay(),
                c.energy,
                c.mc
            );
        }
        for b in res.best.iter().filter(|b| b.group == gi) {
            let c = &res.cells[b.cell];
            println!(
                "  best under {:<8} cell {:>4}  {}  score {:.4e}",
                b.objective,
                b.cell,
                archs[c.arch_idx].paper_tuple(),
                b.score
            );
        }
    }
    println!("\nartifacts:");
    for p in &res.artifacts {
        println!("  {}", p.display());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("models") => {
            let names = [
                ("rn-50", "ResNet-50 (224x224)"),
                ("rnx", "ResNeXt-50 32x4d"),
                ("ires", "Inception-ResNet-v1 (299x299)"),
                ("pnas", "PNASNet (224x224)"),
                ("tf", "Transformer base (128 tokens, d512)"),
                ("tf-large", "Transformer large (128 tokens, d1024)"),
                ("bert", "BERT-base encoder (12 layers, d768)"),
                ("gn", "GoogLeNet"),
                ("dn-121", "DenseNet-121"),
                ("mbv2", "MobileNetV2"),
                ("effnet", "EfficientNet-B0 (SE omitted)"),
                ("vgg", "VGG-16"),
            ];
            let detail = args.iter().any(|a| a == "--detail");
            for (abbr, desc) in names {
                if detail {
                    let dnn = gemini::model::zoo::by_name(abbr).expect("listed model exists");
                    println!("{abbr:<9} {}", dnn.summary());
                } else {
                    println!("{abbr:<9} {desc}");
                }
            }
            ExitCode::SUCCESS
        }
        Some("heatmap") => {
            let Some(dnn) = args.get(1).and_then(|m| gemini::model::zoo::by_name(m)) else {
                eprintln!("unknown model; try `gemini models`");
                return ExitCode::FAILURE;
            };
            let batch: u32 = flag(&args, "--batch")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8);
            let sa = sa_opts(&args, 800);
            let iters = sa.iters;
            let arch = gemini::arch::presets::g_arch_72();
            let ev = Evaluator::new(&arch);
            let engine = MappingEngine::new(&ev);
            let busiest = |m: &gemini::core::engine::MappedDnn| {
                let r = m
                    .report
                    .groups
                    .iter()
                    .max_by(|a, b| {
                        a.traffic
                            .total_hop_bytes()
                            .partial_cmp(&b.traffic.total_hop_bytes())
                            .expect("finite")
                    })
                    .expect("at least one group");
                gemini::noc::Heatmap::build(ev.network(), &r.traffic)
            };
            let t = engine.map_stripe(&dnn, batch, &MappingOptions::default());
            let g = engine.map(
                &dnn,
                batch,
                &MappingOptions {
                    sa,
                    ..Default::default()
                },
            );
            println!(
                "busiest-group link pressure on {} (0-9):",
                arch.paper_tuple()
            );
            println!("\nT-Map:\n{}", busiest(&t).render_ascii());
            println!("G-Map (SA {iters}):\n{}", busiest(&g).render_ascii());
            ExitCode::SUCCESS
        }
        Some("archs") => {
            for (n, a) in [
                ("s-arch", gemini::arch::presets::simba_s_arch()),
                ("g-arch", gemini::arch::presets::g_arch_72()),
                ("t-arch", gemini::arch::presets::t_arch()),
                ("g-arch-torus", gemini::arch::presets::g_arch_vs_tarch()),
            ] {
                println!("{n:<14} {}  [{:.0} TOPS]", a.paper_tuple(), a.tops());
            }
            ExitCode::SUCCESS
        }
        Some("cost") => {
            let Some(arch) = args.get(1).and_then(|n| preset(n)) else {
                eprintln!("unknown preset; try `gemini archs`");
                return ExitCode::FAILURE;
            };
            let mc = CostModel::default().evaluate(&arch);
            println!("architecture : {}", arch.paper_tuple());
            println!(
                "silicon      : ${:8.2}  ({:.1} mm2 total)",
                mc.silicon, mc.silicon_mm2
            );
            for d in &mc.per_die {
                println!(
                    "  {:?} die    : {:6.1} mm2 x{}  yield {:.3}  ${:.2} each",
                    d.kind, d.area_mm2, d.count, d.yield_, d.unit_cost
                );
            }
            println!("DRAM         : ${:8.2}", mc.dram);
            println!(
                "packaging    : ${:8.2}  ({:.0} mm2 substrate)",
                mc.package, mc.substrate_mm2
            );
            println!("total        : ${:8.2}", mc.total());
            ExitCode::SUCCESS
        }
        Some("map") => {
            let Some(dnn) = args.get(1).and_then(|m| gemini::model::zoo::by_name(m)) else {
                eprintln!("unknown model; try `gemini models`");
                return ExitCode::FAILURE;
            };
            let arch = match flag(&args, "--arch") {
                Some(n) => match preset(&n) {
                    Some(a) => a,
                    None => {
                        eprintln!("unknown preset; try `gemini archs`");
                        return ExitCode::FAILURE;
                    }
                },
                None => gemini::arch::presets::g_arch_72(),
            };
            let batch: u32 = flag(&args, "--batch")
                .and_then(|v| v.parse().ok())
                .unwrap_or(16);
            let sa = sa_opts(&args, 1000);
            println!(
                "mapping {} onto {} (batch {batch}, SA {} x {} threads)",
                dnn.name(),
                arch.paper_tuple(),
                sa.iters,
                sa.chain_threads()
            );
            let ev = Evaluator::new(&arch);
            let cmp = compare_mappings(&ev, &dnn, batch, &sa);
            println!(
                "T-Map : {:9.3} ms  {:9.3} mJ",
                cmp.tangram.delay_s * 1e3,
                cmp.tangram.energy_j * 1e3
            );
            println!(
                "G-Map : {:9.3} ms  {:9.3} mJ   ({:.2}x perf, {:.2}x energy)",
                cmp.gemini.delay_s * 1e3,
                cmp.gemini.energy_j * 1e3,
                cmp.speedup(),
                cmp.energy_gain()
            );
            if let Some(s) = &cmp.gemini_stats {
                println!("{}", sa_counter_line(s));
            }
            if args.iter().any(|a| a == "--stats") {
                let engine = MappingEngine::new(&ev);
                let opts = MappingOptions {
                    sa,
                    ..Default::default()
                };
                let mapped = engine.map(&dnn, batch, &opts);
                let gms = mapped.group_mappings(&dnn);
                println!("\nper-group utilization and network-fidelity ladder (G-Map):");
                println!(
                    "{:>5} {:>7} {:>8} {:>8} {:>8}  {:>10} {:>10} {:>10}",
                    "group", "cores", "busy", "MAC eff", "D2D", "analytic", "fluid", "packet"
                );
                let cfg = gemini::noc::packetsim::PacketSimConfig::default();
                for (gi, gm) in gms.iter().enumerate() {
                    let u = gemini::sim::utilization(&ev, &dnn, gm, batch);
                    let f = gemini::sim::check_group(&ev, &dnn, gm, &cfg, 512e3);
                    println!(
                        "{:>5} {:>6.0}% {:>7.0}% {:>7.0}% {:>7.0}%  {:>9.2}us {:>9.2}us {:>9.2}us",
                        gi,
                        u.cores_used * 100.0,
                        u.mean_busy * 100.0,
                        u.mac_efficiency * 100.0,
                        u.d2d_share * 100.0,
                        f.analytic_s * 1e6,
                        f.fluid_s * 1e6,
                        f.packet_s * 1e6
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Some("hetero") => {
            let Some(dnn) = args.get(1).and_then(|m| gemini::model::zoo::by_name(m)) else {
                eprintln!("unknown model; try `gemini models`");
                return ExitCode::FAILURE;
            };
            let batch: u32 = flag(&args, "--batch")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8);
            let sa = sa_opts(&args, 300);
            let iters = sa.iters;
            let fabric = ArchConfig::builder()
                .cores(6, 6)
                .cuts(2, 2)
                .noc_bw(32.0)
                .d2d_bw(16.0)
                .dram_bw(144.0)
                .build()
                .expect("valid fabric");
            let spec = gemini::core::hetero_dse::HeteroDseSpec {
                fabric,
                classes: vec![
                    gemini::arch::CoreClass {
                        macs: 1536,
                        glb_bytes: 3 << 20,
                    },
                    gemini::arch::CoreClass {
                        macs: 512,
                        glb_bytes: 1 << 20,
                    },
                ],
            };
            let opts = DseOptions {
                batch,
                mapping: MappingOptions {
                    sa,
                    ..Default::default()
                },
                ..Default::default()
            };
            println!(
                "exploring {} class assignments for {} (batch {batch}, SA {iters})",
                spec.candidates().len(),
                dnn.name()
            );
            let res =
                gemini::core::hetero_dse::run_hetero_dse(std::slice::from_ref(&dnn), &spec, &opts);
            let best = res.best_record();
            let tag: String = best
                .spec
                .class_of_chiplet()
                .iter()
                .map(|&c| if c == 0 { 'B' } else { 'L' })
                .collect();
            println!(
                "best assignment {tag} (B = 1536-MAC, L = 512-MAC): {:.1} TOPS  MC ${:.2}  \
                 E {:.3e} J  D {:.3e} s",
                best.tops, best.mc, best.energy, best.delay
            );
            ExitCode::SUCCESS
        }
        Some("campaign") => {
            let merge = args.get(1).map(String::as_str) == Some("merge");
            let manifest_pos = if merge { 2 } else { 1 };
            let Some(manifest) = args.get(manifest_pos).filter(|a| !a.starts_with("--")) else {
                eprintln!(
                    "usage: gemini campaign <manifest.toml|.json> [--resume] [--threads N] \
                     [--out DIR] [--shards N --shard-index K [--steal]]\n       \
                     gemini campaign merge <manifest.toml|.json> [--out DIR]"
                );
                return ExitCode::FAILURE;
            };
            let spec = match CampaignSpec::load(std::path::Path::new(manifest)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let opts = CampaignOptions {
                threads: flag(&args, "--threads")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                resume: args.iter().any(|a| a == "--resume"),
                out_root: flag(&args, "--out").map(std::path::PathBuf::from),
            };
            // Shard flags: --shards and --shard-index come as a pair;
            // --steal only modifies a shard run; a merge takes none of
            // them (it discovers the journals on disk).
            let shards = flag(&args, "--shards").and_then(|v| v.parse::<usize>().ok());
            let shard_index = flag(&args, "--shard-index").and_then(|v| v.parse::<usize>().ok());
            let steal = args.iter().any(|a| a == "--steal");
            if merge && (shards.is_some() || shard_index.is_some() || steal) {
                eprintln!(
                    "`gemini campaign merge` takes no shard flags; it discovers \
                     journal-shard-*.jsonl in the campaign directory"
                );
                return ExitCode::FAILURE;
            }
            let shard = match (shards, shard_index) {
                (None, None) => None,
                (Some(count), Some(index)) => {
                    if index >= count {
                        eprintln!("--shard-index {index} is out of range for --shards {count}");
                        return ExitCode::FAILURE;
                    }
                    Some(ShardSpec {
                        index,
                        count,
                        steal,
                    })
                }
                (Some(_), None) => {
                    eprintln!("--shards requires --shard-index");
                    return ExitCode::FAILURE;
                }
                (None, Some(_)) => {
                    eprintln!("--shard-index requires --shards");
                    return ExitCode::FAILURE;
                }
            };
            if steal && shard.is_none() {
                eprintln!("--steal requires --shards and --shard-index");
                return ExitCode::FAILURE;
            }
            let sets = spec.workload_sets();
            let archs = spec.arch_candidates();
            println!(
                "campaign '{}' [{}]: {} workload set(s) x {} batch(es) x {} arch(s) = {} cells{}",
                spec.name,
                spec.fingerprint(),
                sets.len(),
                spec.batches.len(),
                archs.len(),
                sets.len() * spec.batches.len() * archs.len(),
                if opts.resume { " (resuming)" } else { "" }
            );
            if merge {
                let res = match merge_shards(&spec, &opts) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                println!("merged {} cell(s) from shard journals", res.cells.len());
                print_campaign_result(&spec, &res);
            } else if let Some(shard) = shard {
                let res = match run_campaign_shard(&spec, &opts, shard) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                println!(
                    "shard {}/{}: owns {} cell(s); {} evaluated ({} stolen), {} resumed \
                     from the journal",
                    res.shard.0, res.shard.1, res.owned, res.evaluated, res.stolen, res.skipped
                );
                println!("journal: {}", res.journal.display());
                println!("run `gemini campaign merge {manifest}` once every shard has finished");
            } else {
                let res = match run_campaign(&spec, &opts) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                println!(
                    "{} cell(s) evaluated, {} resumed from the journal",
                    res.evaluated, res.skipped
                );
                println!("journal: {}", res.dir.join("journal.jsonl").display());
                print_campaign_result(&spec, &res);
            }
            ExitCode::SUCCESS
        }
        Some("dse") => {
            let tops: f64 = flag(&args, "--tops")
                .and_then(|v| v.parse().ok())
                .unwrap_or(72.0);
            let stride: usize = flag(&args, "--stride")
                .and_then(|v| v.parse().ok())
                .unwrap_or(29);
            let batch: u32 = flag(&args, "--batch")
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            let rerank_k: usize = flag(&args, "--rerank-k")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8);
            let fidelity = match flag(&args, "--fidelity").as_deref() {
                None | Some("analytic") => FidelityPolicy::Analytic,
                Some("rerank") => FidelityPolicy::rerank(rerank_k),
                Some("validate") => FidelityPolicy::validate(rerank_k),
                Some(other) => {
                    eprintln!("unknown fidelity policy '{other}'; use analytic|rerank|validate");
                    return ExitCode::FAILURE;
                }
            };
            let mut sa = sa_opts(&args, 300);
            // For the DSE, `--threads` sets the candidate-sweep workers,
            // not the SA chain count (which `sa_opts` would otherwise
            // also take from the flag, multiplying into workers x chains
            // threads): chains revert to auto and `run_dse_over` pins
            // them to 1 while the sweep is parallel. Results are
            // identical either way.
            let cli_threads: Option<usize> = flag(&args, "--threads").and_then(|v| v.parse().ok());
            if cli_threads.is_some() {
                sa.threads = 0;
            }
            let iters = sa.iters;
            let spec = DseSpec::table1(tops);
            let mut opts = DseOptions {
                objective: Objective::mc_e_d(),
                batch,
                mapping: MappingOptions {
                    sa,
                    ..Default::default()
                },
                stride,
                fidelity,
                ..Default::default()
            };
            if let Some(t) = cli_threads {
                if t > 0 {
                    opts.threads = t;
                }
            }
            println!(
                "{} candidates in the {tops}-TOPs grid; exploring every {stride}th with SA {iters}",
                spec.candidates().len()
            );
            let dnns = vec![gemini::model::zoo::transformer_base()];
            let res = run_dse(&dnns, &spec, &opts);
            let best = res.best_record();
            println!("best under MC*E*D: {}", best.arch.paper_tuple());
            println!(
                "MC ${:.2}  E {:.3} mJ  D {:.3} ms",
                best.mc,
                best.energy * 1e3,
                best.delay * 1e3
            );
            println!("{}", sa_counter_line(&best.sa_stats));
            print_fidelity_report(&res);
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
