//! Concrete generators: [`StdRng`] and the deterministic
//! [`mock::StepRng`].

use crate::{RngCore, SeedableRng};

/// xoshiro256++ (Blackman & Vigna). Not the real crate's ChaCha12, but
/// deterministic per seed, uniform, and fast — which is all the SA
/// engine and the tests rely on.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

impl SeedableRng for StdRng {
    /// Expands the seed with SplitMix64, as the xoshiro authors
    /// recommend, so that nearby seeds produce unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

pub mod mock {
    //! Deterministic mock generators for unit tests.

    use crate::RngCore;

    /// Returns `initial`, `initial + increment`, ... (wrapping), like
    /// `rand::rngs::mock::StepRng`.
    #[derive(Debug, Clone)]
    pub struct StepRng {
        v: u64,
        increment: u64,
    }

    impl StepRng {
        pub fn new(initial: u64, increment: u64) -> Self {
            Self {
                v: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.v;
            self.v = self.v.wrapping_add(self.increment);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!((0..16).any(|_| c.next_u64() != b.next_u64()));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = mock::StepRng::new(7, 13);
        assert_eq!(rng.next_u64(), 7);
        assert_eq!(rng.next_u64(), 20);
        assert_eq!(rng.next_u64(), 33);
    }
}
