//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate
//! (0.8 API surface), vendored so the workspace builds without network
//! access (see docs/ARCHITECTURE.md, "Offline dependency policy").
//!
//! Implemented subset — exactly what the SA engine
//! (`gemini-core::sa`), the stochastic mapping helpers and the test
//! suites use:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (half-open and inclusive
//!   integer ranges, `f64`/`f32` ranges), `gen::<T>()` for floats,
//!   bools and unsigned integers, and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — xoshiro256++ seeded via SplitMix64 (a
//!   different stream than the real `StdRng`'s ChaCha12, but the same
//!   statistical contract the SA engine needs: deterministic for a
//!   given seed, uniform, 2^256-1 period);
//! * [`rngs::mock::StepRng`] for deterministic operator tests.
//!
//! Swapping the real crate back in is a one-line change in
//! `[workspace.dependencies]`; seeded runs will then sample a
//! different (but equally valid) stream.

pub mod distributions;
pub mod rngs;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] like in the real crate.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`Range` or `RangeInclusive` over
    /// integers, `Range` over floats). Panics on an empty range.
    fn gen_range<R>(&mut self, range: R) -> R::Output
    where
        R: distributions::SampleRange,
    {
        range.sample_from(self)
    }

    /// Sample from the standard distribution of `T`: `[0, 1)` for
    /// floats, fair coin for `bool`, full range for unsigned integers.
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
    {
        T::sample_standard(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}
