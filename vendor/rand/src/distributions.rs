//! Standard and uniform-range distributions backing [`Rng::gen`] and
//! [`Rng::gen_range`](crate::Rng::gen_range).
//!
//! [`Rng::gen`]: crate::Rng::gen

use core::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Types samplable by `rng.gen::<T>()`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}

standard_uint!(u8, u16, u32, u64, usize);

/// Ranges accepted by `rng.gen_range(..)`.
pub trait SampleRange {
    type Output;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire's
/// unbiased-enough fast path; the retry loop is omitted — the bias is
/// at most 2^-64 per sample, far below anything the SA engine or the
/// statistical tests can resolve).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end,
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_span(rng, span + 1) as i128) as $t
            }
        }
    )*}
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end,
                );
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*}
}

uniform_float!(f32, f64);
