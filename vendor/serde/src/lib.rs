//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The repo's crates tag their public config/result types with
//! `#[derive(Serialize, Deserialize)]` so that a future PR can wire
//! real (de)serialization without touching every type again, but no
//! code path serializes anything yet. Since the workspace must build
//! without network access (see docs/ARCHITECTURE.md), this crate
//! provides just enough surface for those derives and bounds to
//! compile:
//!
//! * [`Serialize`] / [`Deserialize`] marker traits with blanket impls,
//!   so `T: Serialize` bounds are always satisfiable;
//! * re-exported no-op derive macros from the sibling `serde_derive`
//!   stand-in.
//!
//! Replacing this with the real crates.io `serde` is a one-line change
//! in `[workspace.dependencies]` and requires no source edits.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Mirrors `serde::de` far enough for `use serde::de::DeserializeOwned`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser` far enough for `use serde::ser::Serialize`.
pub mod ser {
    pub use super::Serialize;
}
