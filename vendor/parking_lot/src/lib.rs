//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot),
//! vendored so the workspace builds without network access (see
//! docs/ARCHITECTURE.md, "Offline dependency policy").
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning
//! API: `lock()` / `read()` / `write()` return guards directly. A
//! poisoned std lock (a panic while held) is recovered by taking the
//! inner value, matching parking_lot's "no poisoning" semantics. The
//! performance characteristics are std's, not parking_lot's — fine for
//! the intra-core memo cache, which is its only user today.

use std::sync::{self, TryLockError};

/// Non-poisoning wrapper over [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning wrapper over [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
