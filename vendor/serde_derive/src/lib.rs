//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace builds without network access, so the real
//! `serde_derive` (and its `syn`/`quote` dependency tree) is not
//! available. The workspace only uses serde as a forward-compatibility
//! marker — nothing serializes yet — so `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` expand to nothing: the vendored `serde`
//! crate provides blanket impls of its marker traits, which keeps any
//! `T: Serialize` bound satisfiable. Swapping the real crates back in
//! requires no source change outside `[workspace.dependencies]`.

use proc_macro::TokenStream;

/// Accepts (and discards) the container body, including any
/// `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// See [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
