//! The [`proptest!`] macro family.

/// Declares property tests. Supported grammar (the subset of the real
/// macro this workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]  // optional
///
///     /// docs / attributes...
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
///     ...
/// }
/// ```
///
/// Each function runs `config.cases` random cases drawn from a
/// generator seeded by the function name. On `prop_assert*!` failure
/// the test panics with the failing inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher: expands one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed on case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, msg, inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness (usable only
/// inside [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
            stringify!($left), stringify!($right), left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n    both: {:?}",
            stringify!($left), stringify!($right), left,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Skips the current case when its inputs don't satisfy a
/// precondition (counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
