//! Config, case-level error type and the deterministic RNG used to
//! drive strategies.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, like the real crate.
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: skip, don't fail.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Entropy source handed to [`Strategy::sample`]. Seeded from the test
/// name so each property explores a stable input stream across runs
/// and machines; `PROPTEST_RERUN_SEED=<u64>` perturbs the stream to
/// explore new inputs.
///
/// [`Strategy::sample`]: crate::strategy::Strategy::sample
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Some(extra) = std::env::var("PROPTEST_RERUN_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            h ^= extra.rotate_left(17);
        }
        Self(StdRng::seed_from_u64(h))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform index in `[0, n)`; `n` must be non-zero.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
