//! The [`Strategy`] trait and its built-in implementations: integer
//! and float ranges, tuples, [`Just`] and [`Map`].

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no value tree / shrinking: `sample`
/// draws one concrete value directly.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a dependent strategy from each value, then sample it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`. Panics if 1000 consecutive
    /// draws are rejected (mirroring proptest's give-up behaviour).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejections ({})", self.whence);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*}
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*}
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
