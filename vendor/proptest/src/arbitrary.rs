//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — a pragmatic simplification of the real
    /// crate's full-domain floats (no NaN/inf/subnormal cases).
    fn arbitrary_sample(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}
