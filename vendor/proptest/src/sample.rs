//! Sampling strategies over explicit option sets: [`select`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Uniformly picks one of `options`. Panics if empty.
pub fn select<T: Clone + core::fmt::Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: no options");
    Select { options }
}

impl<T: Clone + core::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.index(self.options.len())].clone()
    }
}
