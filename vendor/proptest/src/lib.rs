//! Offline stand-in for [`proptest`](https://docs.rs/proptest),
//! vendored so the workspace builds without network access (see
//! docs/ARCHITECTURE.md, "Offline dependency policy").
//!
//! Implements the subset the property suites use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(...)]`), [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`];
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   and float ranges, tuples and [`strategy::Just`];
//! * [`arbitrary::any`] for primitives;
//! * [`collection::vec`] and [`sample::select`];
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Semantics differences from the real crate, by design:
//!
//! * cases are drawn from a generator seeded deterministically from
//!   the test name, so every run explores the same inputs — failures
//!   always reproduce (set `PROPTEST_RERUN_SEED` to explore a
//!   different stream);
//! * there is **no shrinking**: a failure reports the exact offending
//!   inputs instead of a minimized counterexample.

pub mod arbitrary;
pub mod collection;
mod macros;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test module needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}
