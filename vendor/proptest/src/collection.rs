//! Collection strategies: [`vec()`].

use core::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec()`]: a fixed size, `lo..hi` or
/// `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec`s of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.index(self.size.hi - self.size.lo);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
