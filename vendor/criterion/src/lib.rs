//! Offline stand-in for [`criterion`](https://docs.rs/criterion),
//! vendored so the workspace builds without network access (see
//! docs/ARCHITECTURE.md, "Offline dependency policy").
//!
//! Implements the subset the `micro` bench suite uses — `Criterion`
//! with `sample_size` / `measurement_time` / `warm_up_time` /
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`, and
//! the `criterion_group!` / `criterion_main!` macros — as a plain
//! wall-clock harness: warm up, then time `sample_size` samples and
//! report min/median/mean per iteration. No statistics beyond that, no
//! HTML reports, no baseline comparison; swap the real crate back into
//! `[workspace.dependencies]` when those are needed.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; created by [`criterion_main!`] via the group's
/// `config` expression (or [`Criterion::default`]).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter: None,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies CLI args passed by `cargo bench`: `--sample-size`,
    /// `--measurement-time` and `--warm-up-time` override the group
    /// config, a bare string becomes a name filter, and the remaining
    /// harness flags are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        // Unparsable, non-positive or non-finite values are ignored
        // rather than panicking the whole suite.
        let secs = |v: Option<String>| {
            v.and_then(|s| s.parse::<f64>().ok())
                .filter(|s| s.is_finite() && *s > 0.0)
                .map(Duration::from_secs_f64)
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|s| s.parse().ok()).filter(|&n| n >= 2) {
                        self = self.sample_size(n);
                    }
                }
                "--measurement-time" => {
                    if let Some(d) = secs(args.next()) {
                        self = self.measurement_time(d);
                    }
                }
                "--warm-up-time" => {
                    if let Some(d) = secs(args.next()) {
                        self = self.warm_up_time(d);
                    }
                }
                // Harness flags without a meaning here; the first three
                // carry a value to skip.
                "--profile-time" | "--save-baseline" | "--baseline" => {
                    let _ = args.next();
                }
                "--bench" | "--test" => {}
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }

        // Warm-up: run until the warm-up budget is spent, measuring
        // roughly how long one pass of the routine takes.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += 1;
        }
        let per_pass = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Size each sample so the whole measurement fits the budget.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_pass.is_zero() {
            1000
        } else {
            (per_sample.as_nanos() / per_pass.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters.max(1) as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples.first().copied().unwrap_or(0.0);
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            samples.len(),
            iters_per_sample,
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Per-benchmark measurement context handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Batch sizing hint; the stand-in harness always batches per
/// iteration, so this only preserves API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
