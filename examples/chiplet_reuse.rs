//! Chiplet reuse across accelerator scales (the paper's Sec. VII-B /
//! Fig. 8): build a 512-TOPs-class accelerator out of 128-TOPs-class
//! chiplets and compare against a natively-sized design and against
//! tiling Simba chiplets.
//!
//! Run with `cargo run --release --example chiplet_reuse`.

use gemini::core::dse::scale_arch;
use gemini::prelude::*;

fn eval(arch: &ArchConfig, dnn: &gemini::model::Dnn, label: &str, cost: &CostModel) {
    let ev = Evaluator::new(arch);
    let engine = MappingEngine::new(&ev);
    let opts = MappingOptions {
        sa: SaOptions {
            iters: 600,
            seed: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    let m = engine.map(dnn, 16, &opts);
    let mc = cost.evaluate(arch);
    println!(
        "{label:<34} {:>10} chiplets={:<3} MC ${:>7.2} D {:>8.3} ms  E {:>8.3} mJ",
        format!("{:.0} TOPS", arch.tops()),
        arch.n_chiplets(),
        mc.total(),
        m.report.delay_s * 1e3,
        m.report.energy.total() * 1e3
    );
}

fn main() {
    let dnn = gemini::model::zoo::transformer_base();
    let cost = CostModel::default();

    // A good 128-TOPs-class design (Fig. 7's MC*E*D optimum): 2 chiplets
    // of 16 cores.
    let native_128 = ArchConfig::builder()
        .cores(8, 4)
        .cuts(2, 1)
        .noc_bw(32.0)
        .d2d_bw(16.0)
        .dram_bw(128.0)
        .glb_kb(2048)
        .macs_per_core(2048)
        .build()
        .expect("valid");

    // Scale it 4x: a 512-TOPs accelerator from the same chiplet.
    let reused_512 = scale_arch(&native_128, 4).expect("tiles");

    // A natively-explored 512-TOPs-class design: 4 chiplets of 32 cores.
    let native_512 = ArchConfig::builder()
        .cores(16, 8)
        .cuts(2, 2)
        .noc_bw(64.0)
        .d2d_bw(32.0)
        .dram_bw(512.0)
        .glb_kb(2048)
        .macs_per_core(2048)
        .build()
        .expect("valid");

    // Simba's 1-core chiplet tiled out to the same scale.
    let simba_512 = scale_arch(&gemini::arch::presets::simba_s_arch(), 7).expect("tiles");

    println!("construction schemes for a ~512-TOPs accelerator:\n");
    eval(&native_128, &dnn, "native 128-TOPs design", &cost);
    eval(&reused_512, &dnn, "4x reused 128-TOPs chiplets", &cost);
    eval(&native_512, &dnn, "native 512-TOPs design", &cost);
    eval(&simba_512, &dnn, "252 Simba chiplets", &cost);

    println!(
        "\nexpected shape (paper Fig. 8): reuse is close to native at the same scale;\n\
         tiny one-size-fits-all chiplets (Simba) fall far behind."
    );

    // The NRE side of the argument (Sec. VII-B): one shared chiplet
    // design amortizes mask/design costs over both products' volumes.
    let nre = gemini::cost::NreModel::default();
    let area = gemini::arch::AreaModel::default();
    let bespoke = nre.per_unit_for(&native_128, &area) + nre.per_unit_for(&native_512, &area);
    let shared = nre.per_unit_for(&native_128, &area); // one design, reused
    println!(
        "\nNRE per unit: two bespoke designs ${:.0} vs one reused chiplet ${:.0} \
         ({}k units each)",
        bespoke,
        shared,
        nre.volume / 1000
    );
}
