//! Heterogeneous chiplets (the paper's Sec. V-D future-work direction):
//! build a big/little accelerator from two core classes, then show how
//! much of the heterogeneity penalty mapping recovers — first with the
//! throughput-weighted stripe, then with SA refinement.
//!
//! Run with `cargo run --release --example hetero_mapping`.

use gemini::arch::{ArchConfig, CoreClass, HeteroSpec};
use gemini::prelude::*;

fn main() {
    // A 72-TOPs-class fabric cut north/south; the north chiplet gets
    // 1536-MAC cores, the south 512-MAC cores (same total TOPS as a
    // uniform 1024-MAC fabric).
    let arch = ArchConfig::builder()
        .cores(6, 6)
        .cuts(1, 2)
        .noc_bw(32.0)
        .d2d_bw(16.0)
        .dram_bw(144.0)
        .glb_kb(2048)
        .build()
        .expect("valid fabric");
    let spec = HeteroSpec::new(
        vec![
            CoreClass {
                macs: 1536,
                glb_bytes: 3 << 20,
            },
            CoreClass {
                macs: 512,
                glb_bytes: 1 << 20,
            },
        ],
        vec![0, 1],
        &arch,
    )
    .expect("valid spec");

    let dnn = gemini::model::zoo::tiny_resnet();
    let batch = 8;
    println!("workload : {}", dnn.name());
    println!(
        "fabric   : {} cores, {} chiplets, {:.1} TOPS heterogeneous",
        arch.n_cores(),
        arch.n_chiplets(),
        spec.tops(&arch)
    );
    println!(
        "classes  : north {} MACs / {} MiB, south {} MACs / {} MiB\n",
        spec.classes()[0].macs,
        spec.classes()[0].glb_bytes >> 20,
        spec.classes()[1].macs,
        spec.classes()[1].glb_bytes >> 20
    );

    // Homogeneous reference at the same total TOPS.
    let ev_ref = Evaluator::new(&arch);
    let engine_ref = MappingEngine::new(&ev_ref);
    let sa = SaOptions {
        iters: 800,
        seed: 3,
        ..Default::default()
    };
    let opts = MappingOptions {
        sa: sa.clone(),
        ..Default::default()
    };
    let reference = engine_ref.map(&dnn, batch, &opts);
    let ref_edp = reference.report.edp();

    // Heterogeneous evaluator: cores take their class's PE array + GLB.
    let ev = Evaluator::hetero(&arch, &spec);
    let engine = MappingEngine::new(&ev);

    let blind = engine.map_stripe(&dnn, batch, &MappingOptions::default());
    let weighted = engine.map_hetero(
        &dnn,
        batch,
        &MappingOptions {
            sa: SaOptions {
                iters: 0,
                ..sa.clone()
            },
            ..Default::default()
        },
        &spec,
    );
    let annealed = engine.map_hetero(&dnn, batch, &opts, &spec);

    println!(
        "{:<26} {:>11} {:>11} {:>9}",
        "mapping", "delay (ms)", "energy (mJ)", "EDP/ref"
    );
    for (name, m) in [
        ("homogeneous + SA (ref)", &reference),
        ("blind stripe", &blind),
        ("weighted stripe", &weighted),
        ("weighted stripe + SA", &annealed),
    ] {
        println!(
            "{:<26} {:>11.4} {:>11.4} {:>8.2}x",
            name,
            m.report.delay_s * 1e3,
            m.report.energy.total() * 1e3,
            m.report.edp() / ref_edp
        );
    }

    let mc = CostModel::default().evaluate_hetero(&arch, &spec);
    println!(
        "\nheterogeneous package MC: ${:.2} (silicon {:.2} + DRAM {:.2} + package {:.2})",
        mc.total(),
        mc.silicon,
        mc.dram,
        mc.package
    );
    println!(
        "\nThe blind stripe treats all cores as equal, so the little cores\n\
         bottleneck every pipeline stage. The throughput-weighted stripe cuts\n\
         layer boundaries at cumulative-MACs targets, and SA then fine-tunes\n\
         core-group membership across the speed boundary."
    );
}
