//! A scaled-down version of the paper's 72-TOPs DSE (Table I +
//! Sec. VI-B1): exhaustively score architecture candidates under
//! `MC * E * D` with the Transformer workload and print the winner — the
//! paper's run converges to `(2, 36, 144GB/s, 32GB/s, 16GB/s, 2MB, 1024)`.
//!
//! The DSE runs congestion-aware: the top-8 analytic survivors are
//! re-scored with the fluid NoC simulator and the winner is validated
//! with the flit-granular packet simulator
//! ([`FidelityPolicy::ValidateWinner`]). An analytic-only pass runs
//! first so the fidelity stages' wall-clock overhead is visible — the
//! re-rank + validation must stay a small fraction of the sweep.
//!
//! The full grid takes server-scale time; this example subsamples it
//! (set `GEMINI_DSE_MODE=full` for the whole grid).
//!
//! Run with `cargo run --release --example dse_72tops`.

use gemini::prelude::*;

fn main() {
    let spec = DseSpec::table1(72.0);
    let full = std::env::var("GEMINI_DSE_MODE")
        .map(|m| m == "full")
        .unwrap_or(false);
    let stride = if full { 1 } else { 37 };

    let dnns = vec![gemini::model::zoo::transformer_base()];
    let opts = DseOptions {
        objective: Objective::mc_e_d(),
        batch: 64,
        mapping: MappingOptions {
            sa: SaOptions {
                iters: if full { 2000 } else { 400 },
                ..Default::default()
            },
            ..Default::default()
        },
        stride,
        ..Default::default()
    };

    let total = spec.candidates().len();
    println!(
        "72-TOPs DSE: {} candidates in the grid, exploring {} (stride {stride}), {} threads\n",
        total,
        total.div_ceil(stride),
        opts.threads
    );

    // Analytic-only pass: the congestion-blind baseline, timed.
    let t0 = std::time::Instant::now();
    let res = run_dse(&dnns, &spec, &opts);
    let analytic_elapsed = t0.elapsed();
    println!(
        "analytic sweep: {} candidates in {:.1?}",
        res.records.len(),
        analytic_elapsed
    );

    // Congestion-aware pass: fluid re-rank of the top 8, packet
    // validation of the winner. The deterministic SA engine makes the
    // analytic records bit-identical to the first pass, so the extra
    // wall-clock is exactly the fidelity stages (plus the top-K remaps).
    let opts_fid = DseOptions {
        fidelity: FidelityPolicy::validate(8),
        ..opts
    };
    let t1 = std::time::Instant::now();
    let res_fid = run_dse(&dnns, &spec, &opts_fid);
    let fid_elapsed = t1.elapsed();
    let overhead = fid_elapsed.as_secs_f64() / analytic_elapsed.as_secs_f64() - 1.0;
    println!(
        "with fidelity ladder (rerank 8 + winner validation): {:.1?} (+{:.1}% over analytic)",
        fid_elapsed,
        overhead.max(0.0) * 100.0
    );

    let mut ranked: Vec<_> = res_fid.records.iter().collect();
    ranked.sort_by(|a, b| a.score.total_cmp(&b.score));
    println!("\ntop 5 under MC*E*D (analytic scores; * = fluid-rescored):");
    for r in ranked.iter().take(5) {
        println!(
            "  {}{} MC ${:6.2}  E {:8.3} mJ  D {:7.3} ms  score {:.3e}",
            r.arch.paper_tuple(),
            if r.fluid.is_some() { "*" } else { " " },
            r.mc,
            r.energy * 1e3,
            r.delay * 1e3,
            r.score
        );
    }

    let rep = &res_fid.report;
    println!(
        "\nfidelity: worst fluid/analytic on winner {:.2}x over {} groups{}",
        rep.max_fluid_vs_analytic(),
        rep.winner_groups.len(),
        if rep.winner_changed() {
            " — re-rank overturned the analytic winner"
        } else {
            ""
        }
    );
    if let Some(w) = rep.suggested_congestion_weight {
        println!(
            "calibrated congestion weight: {w:.2} (default {:.2})",
            gemini::sim::evaluate::CONGESTION_WEIGHT
        );
    }

    println!("\nbest arch: {}", res_fid.best_record().arch.paper_tuple());
    println!("paper's    (2, 36, 144GB/s, 32GB/s, 16GB/s, 2048KB, 1024)");
}
