//! A scaled-down version of the paper's 72-TOPs DSE (Table I +
//! Sec. VI-B1), now driven by a campaign manifest
//! (`manifests/dse_72tops.toml`): exhaustively score architecture
//! candidates under `MC * E * D` with the Transformer workload and
//! print the winner — the paper's run converges to
//! `(2, 36, 144GB/s, 32GB/s, 16GB/s, 2MB, 1024)`.
//!
//! The campaign runs congestion-aware (`fidelity = "fluid"`): every
//! cell's delay is re-scored with the max-min fluid NoC simulator, so
//! the ranking below uses the congestion-corrected delay. Completed
//! cells land in a resumable journal under `bench_results/campaigns/`
//! and the example always runs with resume on — interrupt the sweep
//! and **re-run the example** (or, for this default manifest,
//! `gemini campaign manifests/dse_72tops.toml --resume`) to pick up
//! where it stopped, with byte-identical artifacts.
//!
//! The full grid takes server-scale time; the manifest subsamples it.
//! `GEMINI_DSE_MODE=full` switches to the whole grid at paper-scale SA
//! budgets under the separate campaign name `dse-72tops-full` (a
//! different spec has a different fingerprint, so it must not share
//! the subsampled run's journal — re-run with the same mode to resume
//! it).
//!
//! Run with `cargo run --release --example dse_72tops`.

use gemini::prelude::*;

fn main() {
    let mut spec = CampaignSpec::load(std::path::Path::new("manifests/dse_72tops.toml"))
        .expect("manifest parses");
    let full = std::env::var("GEMINI_DSE_MODE")
        .map(|m| m == "full")
        .unwrap_or(false);
    if full {
        let grid = spec.grid.as_mut().expect("manifest declares a grid");
        grid.stride = 1;
        spec.sa_iters = 2000;
        // A distinct campaign name: the full-grid spec fingerprints
        // differently, so it gets its own journal instead of refusing
        // (or clobbering) the subsampled run's.
        spec.name = "dse-72tops-full".into();
    }

    let archs = spec.arch_candidates();
    println!(
        "72-TOPs DSE campaign '{}' [{}]: {} candidates (stride {}), SA {} per mapping\n",
        spec.name,
        spec.fingerprint(),
        archs.len(),
        spec.grid.as_ref().map_or(1, |g| g.stride),
        spec.sa_iters
    );

    let t0 = std::time::Instant::now();
    let opts = CampaignOptions {
        resume: true, // a prior interrupted run's journal is picked up
        ..Default::default()
    };
    let res = run_campaign(&spec, &opts).expect("campaign runs");
    println!(
        "{} cell(s) evaluated, {} resumed from the journal, in {:.1?}",
        res.evaluated,
        res.skipped,
        t0.elapsed()
    );

    // Top 5 under MC*E*D on the congestion-corrected delay.
    let mut ranked: Vec<&gemini::core::campaign::CellResult> = res.cells.iter().collect();
    let obj = &spec.objectives[0];
    ranked.sort_by(|a, b| a.score(&obj.objective).total_cmp(&b.score(&obj.objective)));
    println!("\ntop 5 under MC*E*D (congestion-corrected delay):");
    for c in ranked.iter().take(5) {
        println!(
            "  {}  MC ${:6.2}  E {:8.3} mJ  D {:7.3} ms  fluid worst {:.2}x  score {:.3e}",
            archs[c.arch_idx].paper_tuple(),
            c.mc,
            c.energy * 1e3,
            c.eff_delay() * 1e3,
            c.worst_fluid.unwrap_or(1.0),
            c.score(&obj.objective)
        );
    }

    let front = res.archive.front(0);
    println!(
        "\nPareto front ({}): {} of {} candidates are non-dominated",
        res.archive
            .axes()
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join("/"),
        front.len(),
        res.cells.len()
    );

    let best = &res.cells[res.best[0].cell];
    println!("\nbest arch: {}", archs[best.arch_idx].paper_tuple());
    println!("paper's    (2, 36, 144GB/s, 32GB/s, 16GB/s, 2048KB, 1024)");
    println!("\nartifacts under {}:", res.dir.display());
    for p in &res.artifacts {
        println!("  {}", p.display());
    }
}
