//! A scaled-down version of the paper's 72-TOPs DSE (Table I +
//! Sec. VI-B1): exhaustively score architecture candidates under
//! `MC * E * D` with the Transformer workload and print the winner — the
//! paper's run converges to `(2, 36, 144GB/s, 32GB/s, 16GB/s, 2MB, 1024)`.
//!
//! The full grid takes server-scale time; this example subsamples it
//! (set `GEMINI_DSE_MODE=full` for the whole grid).
//!
//! Run with `cargo run --release --example dse_72tops`.

use gemini::prelude::*;

fn main() {
    let spec = DseSpec::table1(72.0);
    let full = std::env::var("GEMINI_DSE_MODE")
        .map(|m| m == "full")
        .unwrap_or(false);
    let stride = if full { 1 } else { 37 };

    let dnns = vec![gemini::model::zoo::transformer_base()];
    let opts = DseOptions {
        objective: Objective::mc_e_d(),
        batch: 64,
        mapping: MappingOptions {
            sa: SaOptions {
                iters: if full { 2000 } else { 400 },
                ..Default::default()
            },
            ..Default::default()
        },
        stride,
        ..Default::default()
    };

    let total = spec.candidates().len();
    println!(
        "72-TOPs DSE: {} candidates in the grid, exploring {} (stride {stride}), {} threads\n",
        total,
        total.div_ceil(stride),
        opts.threads
    );

    let t0 = std::time::Instant::now();
    let res = run_dse(&dnns, &spec, &opts);
    println!(
        "explored {} candidates in {:.1?}\n",
        res.records.len(),
        t0.elapsed()
    );

    let mut ranked: Vec<_> = res.records.iter().collect();
    ranked.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("finite"));
    println!("top 5 under MC*E*D:");
    for r in ranked.iter().take(5) {
        println!(
            "  {}  MC ${:6.2}  E {:8.3} mJ  D {:7.3} ms  score {:.3e}",
            r.arch.paper_tuple(),
            r.mc,
            r.energy * 1e3,
            r.delay * 1e3,
            r.score
        );
    }
    println!("\nbest arch: {}", res.best_record().arch.paper_tuple());
    println!("paper's    (2, 36, 144GB/s, 32GB/s, 16GB/s, 2048KB, 1024)");
}
