//! Multi-DNN architecture co-design (Sec. V-A): Gemini's DSE scores a
//! candidate by the *geometric mean* of energy and delay over all input
//! DNNs, because a deployed accelerator rarely serves one network. This
//! example contrasts per-workload optima with the jointly-optimal
//! architecture for a CNN + Transformer pair.
//!
//! Run with `cargo run --release --example multi_dnn_codesign`.

use gemini::core::dse::{run_dse_over, DseOptions, DseRecord, Objective};
use gemini::prelude::*;
use gemini_core::sa::SaOptions;

/// A small hand-picked 72-TOPs-class candidate slate spanning the axes
/// that differentiate CNNs from Transformers: buffer capacity, NoC
/// bandwidth and core granularity.
fn candidates() -> Vec<ArchConfig> {
    let mut out = Vec::new();
    for (x, y, macs) in [(6u32, 6u32, 1024u32), (6, 3, 2048)] {
        for glb_kb in [256u64, 1024, 8192] {
            for noc in [8.0, 32.0, 128.0] {
                let a = ArchConfig::builder()
                    .cores(x, y)
                    .cuts(2, 1)
                    .noc_bw(noc)
                    .d2d_bw(noc / 2.0)
                    .dram_bw(144.0)
                    .glb_kb(glb_kb)
                    .macs_per_core(macs)
                    .build()
                    .expect("valid candidate");
                out.push(a);
            }
        }
    }
    out
}

fn describe(label: &str, rec: &DseRecord) {
    println!(
        "{:<22} {}  MC ${:.2}  E {:.3e} J  D {:.3e} s",
        label,
        rec.arch.paper_tuple(),
        rec.mc,
        rec.energy,
        rec.delay
    );
}

fn main() {
    let cnn = gemini::model::zoo::tiny_resnet();
    let tf = gemini::model::zoo::transformer_base();
    let slate = candidates();
    println!(
        "co-designing for {} + {} over {} candidates\n",
        cnn.name(),
        tf.name(),
        slate.len()
    );

    let opts = DseOptions {
        // E*D: the workloads' architectural appetites (buffer capacity
        // vs network bandwidth) diverge most without the MC tie-breaker.
        objective: Objective::e_d(),
        batch: 8,
        mapping: MappingOptions {
            sa: SaOptions {
                iters: 200,
                seed: 9,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };

    let for_cnn = run_dse_over(&slate, std::slice::from_ref(&cnn), &opts);
    let for_tf = run_dse_over(&slate, std::slice::from_ref(&tf), &opts);
    let joint = run_dse_over(&slate, &[cnn.clone(), tf.clone()], &opts);

    describe("best for CNN only", for_cnn.best_record());
    describe("best for Transformer", for_tf.best_record());
    describe("joint optimum", joint.best_record());

    // How much does specializing cost the other workload? Score every
    // winner on the joint records (same candidate list, so the joint
    // run already evaluated each winner on both DNNs).
    let find = |arch: &ArchConfig| {
        joint
            .records
            .iter()
            .find(|r| &r.arch == arch)
            .expect("same candidate slate")
    };
    let jc = find(&for_cnn.best_record().arch);
    let jt = find(&for_tf.best_record().arch);
    let jj = joint.best_record();
    println!("\njoint-objective score (E*D, geomean over both DNNs):");
    for (label, r) in [
        ("CNN-specialized", jc),
        ("TF-specialized", jt),
        ("joint optimum", jj),
    ] {
        println!(
            "  {:<18} {:.4e}  ({:+.1}% vs joint)",
            label,
            r.score,
            (r.score / jj.score - 1.0) * 100.0
        );
    }
    println!(
        "\nThe per-DNN winners disagree on core granularity and buffer size;\n\
         the geometric-mean objective weighs both workloads (here siding with\n\
         the costlier Transformer while staying within a few percent for the\n\
         CNN) — the reason Gemini's DSE accepts n DNNs (Sec. V-A)."
    );
}
