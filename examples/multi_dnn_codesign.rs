//! Multi-DNN architecture co-design (Sec. V-A): Gemini's DSE scores a
//! candidate by the *geometric mean* of energy and delay over all input
//! DNNs, because a deployed accelerator rarely serves one network. This
//! example contrasts per-workload optima with the jointly-optimal
//! architecture for a CNN + Transformer pair — driven by the campaign
//! manifest `manifests/multi_dnn_codesign.toml`, whose
//! `mode = "both"` evaluates every workload alone *and* jointly (the
//! joint cells reuse the solo cells' mapping runs through the
//! campaign's cross-cell memo, so the three-way comparison costs one
//! sweep, not three).
//!
//! Run with `cargo run --release --example multi_dnn_codesign`.

use gemini::core::campaign::CellResult;
use gemini::prelude::*;

fn main() {
    let spec = CampaignSpec::load(std::path::Path::new("manifests/multi_dnn_codesign.toml"))
        .expect("manifest parses");
    let archs = spec.arch_candidates();
    let sets = spec.workload_sets();
    println!(
        "co-designing for {} over {} candidates ({} cells)\n",
        spec.workloads.join(" + "),
        archs.len(),
        sets.len() * archs.len()
    );

    let res = run_campaign(
        &spec,
        &CampaignOptions {
            resume: true, // re-running skips already-journaled cells
            ..Default::default()
        },
    )
    .expect("campaign runs");

    // One winner per workload set under the manifest's E*D objective.
    let describe = |label: &str, c: &CellResult| {
        println!(
            "{:<22} {}  MC ${:.2}  E {:.3e} J  D {:.3e} s",
            label,
            archs[c.arch_idx].paper_tuple(),
            c.mc,
            c.energy,
            c.delay
        );
    };
    for b in &res.best {
        let g = &res.groups[b.group];
        let label = if g.wset == "joint" {
            "joint optimum".to_string()
        } else {
            format!("best for {} only", g.wset)
        };
        describe(&label, &res.cells[b.cell]);
    }

    // How much does specializing cost the other workload? Score every
    // per-workload winner on the joint cells (same candidate slate, so
    // the joint group already evaluated each winner on both DNNs).
    let joint_group = res
        .groups
        .iter()
        .position(|g| g.wset == "joint")
        .expect("mode = both has a joint set");
    let joint_cell_for = |arch_idx: usize| {
        res.cells
            .iter()
            .find(|c| c.group(spec.batches.len()) == joint_group && c.arch_idx == arch_idx)
            .expect("same candidate slate")
    };
    let obj = &spec.objectives[0];
    let joint_best = res
        .best
        .iter()
        .find(|b| b.group == joint_group)
        .expect("joint winner");
    let jj = joint_cell_for(res.cells[joint_best.cell].arch_idx);
    println!("\njoint-objective score (E*D, geomean over both DNNs):");
    for b in &res.best {
        let g = &res.groups[b.group];
        let label = if g.wset == "joint" {
            "joint optimum".to_string()
        } else {
            format!("{}-specialized", g.wset)
        };
        let j = joint_cell_for(res.cells[b.cell].arch_idx);
        println!(
            "  {:<22} {:.4e}  ({:+.1}% vs joint)",
            label,
            j.score(&obj.objective),
            (j.score(&obj.objective) / jj.score(&obj.objective) - 1.0) * 100.0
        );
    }
    println!(
        "\nThe per-DNN winners disagree on core granularity and buffer size;\n\
         the geometric-mean objective weighs both workloads — the reason\n\
         Gemini's DSE accepts n DNNs (Sec. V-A). Full per-cell data:\n\
         {}",
        res.dir.join("cells.csv").display()
    );
}
