//! Chiplet-granularity sweep (the paper's insight #1, Sec. VII-A1):
//! partition the same 36-core 72-TOPs fabric into 1..36 chiplets and
//! watch MC, performance and energy.
//!
//! Expected shape: moderate partitioning barely hurts performance and
//! energy while keeping MC low; very fine partitioning (one core per
//! chiplet) worsens all three at once.
//!
//! Run with `cargo run --release --example chiplet_granularity`.

use gemini::prelude::*;

fn main() {
    let dnn = gemini::model::zoo::transformer_base();
    let batch = 16;
    let cost = CostModel::default();

    println!(
        "workload: {} | 36 cores @1024 MACs, cuts swept\n",
        dnn.name()
    );
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>10}",
        "chiplets", "MC ($)", "delay (ms)", "energy (mJ)", "D2D area"
    );

    // (xcut, ycut) pairs on the 6x6 grid, coarse to fine.
    for (xc, yc) in [(1, 1), (2, 1), (2, 2), (3, 3), (6, 3), (6, 6)] {
        let arch = ArchConfig::builder()
            .cores(6, 6)
            .cuts(xc, yc)
            .noc_bw(32.0)
            .d2d_bw(16.0)
            .dram_bw(144.0)
            .glb_kb(2048)
            .macs_per_core(1024)
            .build()
            .expect("valid sweep point");
        let ev = Evaluator::new(&arch);
        let engine = MappingEngine::new(&ev);
        let opts = MappingOptions {
            sa: SaOptions {
                iters: 800,
                seed: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        let mapped = engine.map(&dnn, batch, &opts);
        let mc = cost.evaluate(&arch);
        println!(
            "{:<10} {:>9.2} {:>12.3} {:>12.3} {:>9.1}%",
            format!("{}x{}={}", xc, yc, xc * yc),
            mc.total(),
            mapped.report.delay_s * 1e3,
            mapped.report.energy.total() * 1e3,
            mc.area.d2d_fraction * 100.0
        );
    }
}
