//! The network-model fidelity ladder — a first-class DSE stage.
//!
//! The SA engine calls the analytic network model millions of times, so
//! it must be cheap; the reference simulators keep it honest. This
//! example drives the ladder through the DSE API
//! ([`FidelityPolicy`]): the analytic sweep ranks every candidate, the
//! max-min fluid simulator re-scores the top-K survivors
//! (congestion-aware re-rank), and the flit-granular packet simulator
//! validates the final winner — reporting the per-group discrepancy and
//! a calibrated congestion-surcharge weight to feed back into
//! [`gemini::sim::EvalOptions`].
//!
//! Run with `cargo run --release --example fidelity_ladder`.

use gemini::prelude::*;

fn main() {
    let dnns = vec![gemini::model::zoo::tiny_resnet()];
    let batch = 8;
    // Four fabrics of the same 6x6 grid at different chiplet cuts —
    // including a monolithic one (no D2D links at all).
    let candidates: Vec<ArchConfig> = [(1u32, 1u32), (2, 1), (2, 2), (3, 3)]
        .iter()
        .map(|&(xc, yc)| {
            ArchConfig::builder()
                .cores(6, 6)
                .cuts(xc, yc)
                .build()
                .expect("valid fabric")
        })
        .collect();

    let opts = DseOptions {
        batch,
        mapping: MappingOptions {
            sa: SaOptions {
                iters: 400,
                seed: 17,
                ..Default::default()
            },
            ..Default::default()
        },
        // Rung 2: fluid re-rank of all four candidates, packet
        // validation of the winner.
        fidelity: FidelityPolicy::validate(4),
        ..Default::default()
    };

    println!(
        "workload: {} (batch {batch}), {} candidate fabrics, fidelity policy: validate",
        dnns[0].name(),
        candidates.len()
    );
    let res = gemini::core::dse::run_dse_over(&candidates, &dnns, &opts);
    let rep = &res.report;

    println!("\ncongestion-aware re-rank (analytic score -> fluid-corrected score):");
    for e in &rep.reranked {
        let r = &res.records[e.index];
        println!(
            "  {:<40} {:>12.4e} -> {:>12.4e}{}",
            r.arch.paper_tuple(),
            e.analytic_score,
            e.fluid_score,
            if e.index == rep.best {
                "  <== winner"
            } else {
                ""
            }
        );
    }
    if rep.winner_changed() {
        println!("  (the re-rank overturned the analytic winner)");
    }

    println!("\nwinner's per-group ladder, microseconds (packet rung from winner validation):");
    println!(
        "{:>5}  {:>10} {:>10} {:>10} {:>10} {:>7}",
        "group", "bottleneck", "analytic", "fluid", "packet", "f/a"
    );
    for g in &rep.winner_groups {
        println!(
            "{:>5}  {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>6.2}x",
            g.group,
            g.bottleneck_s * 1e6,
            g.analytic_s * 1e6,
            g.fluid_s * 1e6,
            g.packet_s.unwrap_or(f64::NAN) * 1e6,
            g.fluid_vs_analytic(),
        );
    }

    println!(
        "\nworst fluid/analytic ratio on the winner: {:.2}x",
        rep.max_fluid_vs_analytic()
    );
    match rep.suggested_congestion_weight {
        Some(w) => {
            let calibrated = rep.calibrated_eval_options(gemini::sim::EvalOptions::default());
            println!(
                "calibrated congestion weight: {w:.2} (default {:.2}) — next exploration can \
                 build its evaluators with EvalOptions {{ congestion_weight: {:.2}, .. }}",
                gemini::sim::evaluate::CONGESTION_WEIGHT,
                calibrated.congestion_weight
            );
        }
        None => println!("no group constrained the congestion weight (compute-bound mappings)"),
    }
    println!(
        "\n(ratios <= 1 mean the evaluator's congestion surcharge conservatively covers\n\
         queueing, arbitration and per-hop latency; ratios well above 1 flag mappings\n\
         whose contention the cheap model underprices — exactly what the re-rank stage\n\
         guards the architecture choice against)"
    );
}
