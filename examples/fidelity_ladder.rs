//! The network-model fidelity ladder: audit the analytic evaluator
//! against the max-min fluid and flit-granular packet simulators on the
//! mappings the annealer actually produces.
//!
//! The SA engine calls the analytic model millions of times, so it must
//! be cheap; this example shows how to verify, per layer group, that
//! the cheap model's congestion surcharge really brackets the detailed
//! reference — and that Gemini's optimized mappings keep it honest by
//! spreading traffic (compare the T-Map and G-Map columns).
//!
//! Run with `cargo run --release --example fidelity_ladder`.

use gemini::noc::packetsim::PacketSimConfig;
use gemini::prelude::*;
use gemini::sim::check_group;
use gemini_core::sa::SaOptions;

fn main() {
    let dnn = gemini::model::zoo::tiny_resnet();
    let arch = gemini::arch::presets::g_arch_72();
    let batch = 8;
    let ev = Evaluator::new(&arch);
    let engine = MappingEngine::new(&ev);

    let t_map = engine.map_stripe(&dnn, batch, &MappingOptions::default());
    let g_map = engine.map(
        &dnn,
        batch,
        &MappingOptions {
            sa: SaOptions {
                iters: 800,
                seed: 17,
                ..Default::default()
            },
            ..Default::default()
        },
    );

    let cfg = PacketSimConfig::default();
    println!(
        "workload: {} on {} (batch {batch})",
        dnn.name(),
        arch.paper_tuple()
    );
    println!("\nper-group stage network time, microseconds (cap 512 kB per replay):");
    println!(
        "{:>5}  {:>9} {:>9} {:>9} {:>7}   {:>9} {:>9} {:>9} {:>7}",
        "group",
        "T analyt",
        "T fluid",
        "T packet",
        "T p/a",
        "G analyt",
        "G fluid",
        "G packet",
        "G p/a"
    );

    let t_gms = t_map.group_mappings(&dnn);
    let g_gms = g_map.group_mappings(&dnn);
    let mut worst_t: f64 = 0.0;
    let mut worst_g: f64 = 0.0;
    for (gi, (tg, gg)) in t_gms.iter().zip(&g_gms).enumerate() {
        let ft = check_group(&ev, &dnn, tg, &cfg, 512e3);
        let fg = check_group(&ev, &dnn, gg, &cfg, 512e3);
        worst_t = worst_t.max(ft.packet_vs_analytic());
        worst_g = worst_g.max(fg.packet_vs_analytic());
        println!(
            "{:>5}  {:>9.2} {:>9.2} {:>9.2} {:>6.2}x   {:>9.2} {:>9.2} {:>9.2} {:>6.2}x",
            gi,
            ft.analytic_s * 1e6,
            ft.fluid_s * 1e6,
            ft.packet_s * 1e6,
            ft.packet_vs_analytic(),
            fg.analytic_s * 1e6,
            fg.fluid_s * 1e6,
            fg.packet_s * 1e6,
            fg.packet_vs_analytic(),
        );
    }
    println!(
        "\nworst packet/analytic ratio — T-Map: {worst_t:.2}x, G-Map: {worst_g:.2}x\n\
         (ratios <= 1 mean the evaluator's congestion surcharge conservatively\n\
         covers queueing, arbitration and per-hop latency; ratios well above 1\n\
         would flag mappings whose contention the cheap model underprices)"
    );
}
