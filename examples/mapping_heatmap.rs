//! Fig.-9-style network-traffic heatmaps: map a Transformer slice onto
//! the 72-TOPs G-Arch with Tangram's stripe SPM and with Gemini's SA
//! SPM, then render the per-link pressure of the busiest layer group.
//!
//! The Gemini map should spread traffic (fewer near-peak links) and cut
//! total and D2D hop-bytes.
//!
//! Run with `cargo run --release --example mapping_heatmap`.

use gemini::noc::Heatmap;
use gemini::prelude::*;

fn busiest_group_heatmap(ev: &Evaluator, mapped: &MappedDnn, dnn: &gemini::model::Dnn) -> Heatmap {
    let report = mapped
        .report
        .groups
        .iter()
        .max_by(|a, b| {
            a.traffic
                .total_hop_bytes()
                .partial_cmp(&b.traffic.total_hop_bytes())
                .expect("finite traffic")
        })
        .expect("at least one group");
    let _ = dnn;
    Heatmap::build(ev.network(), &report.traffic)
}

fn main() {
    let dnn = gemini::model::zoo::transformer_base();
    let arch = gemini::arch::presets::g_arch_72();
    let batch = 8;
    let ev = Evaluator::new(&arch);
    let engine = MappingEngine::new(&ev);

    let t = engine.map_stripe(&dnn, batch, &MappingOptions::default());
    let g_opts = MappingOptions {
        sa: SaOptions {
            iters: 1500,
            seed: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let g = engine.map(&dnn, batch, &g_opts);

    let ht = busiest_group_heatmap(&ev, &t, &dnn);
    let hg = busiest_group_heatmap(&ev, &g, &dnn);

    println!("Tangram SPM (per-core pressure, 0-9):");
    println!("{}", ht.render_ascii());
    println!("Gemini SPM:");
    println!("{}", hg.render_ascii());

    let (t_hops, t_d2d) = totals(&ev, &t);
    let (g_hops, g_d2d) = totals(&ev, &g);
    println!(
        "total hop-bytes : Tangram {:.2e}  Gemini {:.2e}  ({:+.1}%)",
        t_hops,
        g_hops,
        (g_hops / t_hops - 1.0) * 100.0
    );
    println!(
        "D2D hop-bytes   : Tangram {:.2e}  Gemini {:.2e}  ({:+.1}%)",
        t_d2d,
        g_d2d,
        (g_d2d / t_d2d.max(1.0) - 1.0) * 100.0
    );
    println!(
        "peak pressure   : Tangram {:.2e}  Gemini {:.2e}",
        ht.peak_pressure(),
        hg.peak_pressure()
    );
}

fn totals(ev: &Evaluator, m: &MappedDnn) -> (f64, f64) {
    let net = ev.network();
    let mut hops = 0.0;
    let mut d2d = 0.0;
    for g in &m.report.groups {
        hops += g.traffic.total_hop_bytes();
        d2d += g.traffic.d2d_hop_bytes(net);
    }
    (hops, d2d)
}
