//! Quickstart: map ResNet-50 onto the paper's explored 72-TOPs G-Arch
//! with the Tangram baseline (T-Map) and Gemini's SA mapping (G-Map),
//! and print the comparison.
//!
//! Run with `cargo run --release --example quickstart`.

use gemini::prelude::*;

fn main() {
    let dnn = gemini::model::zoo::resnet50();
    let arch = gemini::arch::presets::g_arch_72();
    let batch = 16;

    println!(
        "workload : {} ({:.2} GMACs/sample)",
        dnn.name(),
        dnn.total_macs(1) as f64 / 1e9
    );
    println!(
        "arch     : {}  [{:.1} TOPS]",
        arch.paper_tuple(),
        arch.tops()
    );
    println!("batch    : {batch}\n");

    let ev = Evaluator::new(&arch);
    let sa = SaOptions {
        iters: 1500,
        seed: 1,
        ..Default::default()
    };
    let cmp = compare_mappings(&ev, &dnn, batch, &sa);

    println!(
        "T-Map: delay {:8.3} ms   energy {:8.3} mJ",
        cmp.tangram.delay_s * 1e3,
        cmp.tangram.energy_j * 1e3
    );
    println!(
        "G-Map: delay {:8.3} ms   energy {:8.3} mJ",
        cmp.gemini.delay_s * 1e3,
        cmp.gemini.energy_j * 1e3
    );
    println!(
        "\nG-Map vs T-Map: {:.2}x performance, {:.2}x energy efficiency",
        cmp.speedup(),
        cmp.energy_gain()
    );
    println!(
        "hop-bytes reduced {:.1}%, D2D hop-bytes reduced {:.1}%",
        cmp.hop_reduction() * 100.0,
        cmp.d2d_reduction() * 100.0
    );

    let mc = CostModel::default().evaluate(&arch);
    println!(
        "\nmonetary cost: ${:.2} (silicon {:.2} + DRAM {:.2} + package {:.2})",
        mc.total(),
        mc.silicon,
        mc.dram,
        mc.package
    );
}
