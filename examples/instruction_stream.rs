//! Instruction generation: lower a mapped layer group into the per-core
//! static programs the template's control units execute (the
//! "Instruction Gen." output of Fig. 4 in the paper), and replay-verify
//! them.
//!
//! Run with `cargo run --release --example instruction_stream`.

use gemini::prelude::*;
use gemini::sim::{generate_program, validate_program, Instr};

fn main() {
    let dnn = gemini::model::zoo::two_conv_example();
    let arch = gemini::arch::presets::g_arch_72();
    let ev = Evaluator::new(&arch);
    let engine = MappingEngine::new(&ev);
    let opts = MappingOptions {
        sa: SaOptions {
            iters: 400,
            seed: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let mapped = engine.map(&dnn, 4, &opts);
    let gms = mapped.group_mappings(&dnn);

    for (gi, gm) in gms.iter().enumerate() {
        let prog = generate_program(&dnn, gm);
        validate_program(&dnn, gm, &prog).expect("program replays against its mapping");
        println!(
            "group {gi}: {} layers, batch unit {}, {} instructions on {} cores, \
             {} peer bytes, {} DRAM bytes\n",
            gm.members.len(),
            gm.batch_unit,
            prog.len(),
            prog.streams.len(),
            prog.peer_bytes(),
            prog.dram_bytes()
        );
        for (core, stream) in &prog.streams {
            println!("  {core} ({} instrs):", stream.len());
            for i in stream.iter().take(6) {
                match i {
                    Instr::LoadWeights { layer, bytes, .. } => {
                        println!("    LOAD_W   {layer} {bytes}B")
                    }
                    Instr::ReadDram { layer, bytes, .. } => {
                        println!("    RD_DRAM  {layer} {bytes}B")
                    }
                    Instr::Recv { layer, from, bytes } => {
                        println!("    RECV     {layer} <- {from} {bytes}B")
                    }
                    Instr::Compute {
                        layer,
                        region,
                        macs,
                    } => {
                        println!("    COMPUTE  {layer} {region} ({macs} MACs)")
                    }
                    Instr::Send { layer, to, bytes } => {
                        println!("    SEND     {layer} -> {to} {bytes}B")
                    }
                    Instr::WriteDram { layer, bytes, .. } => {
                        println!("    WR_DRAM  {layer} {bytes}B")
                    }
                }
            }
            if stream.len() > 6 {
                println!("    ... {} more", stream.len() - 6);
            }
        }
        println!();
    }
}
